//! The shared memory: a lazily-infinite array of registers.

use crate::{OpKind, Operation, ProcMask, ProcessId, RegisterId, RegisterState, Response, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The paper's shared memory: registers `R_0, R_1, ...`, conceptually
/// infinite in number and unbounded in size.
///
/// Registers are materialised on first touch; an untouched register behaves
/// exactly like a register holding its configured initial value (which is
/// [`Value::Unit`] unless set via [`SharedMemory::set_initial`]). This makes
/// the "infinite number of words" of the paper observationally exact.
///
/// Internally the registers live in two tiers: ids below
/// [`DENSE_REGISTERS`] — every id the shipped algorithms actually use — sit
/// in a directly indexed slab, so the operation hot path costs one bounds
/// check instead of an ordered-map search, while arbitrarily large ids
/// spill into a [`BTreeMap`]. The split is invisible: iteration and
/// snapshots present both tiers merged in id order.
///
/// # Examples
///
/// ```
/// use llsc_shmem::{Operation, ProcessId, RegisterId, Response, SharedMemory, Value};
/// let mut mem = SharedMemory::new();
/// let p = ProcessId(0);
/// let r = RegisterId(1_000_000); // any register exists
/// assert_eq!(mem.apply(p, &Operation::Ll(r)), Response::Value(Value::Unit));
/// let resp = mem.apply(p, &Operation::Sc(r, Value::from(1i64)));
/// assert_eq!(resp.flag(), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharedMemory {
    /// Slab tier: slot `i` is `R_i`'s state, `None` until first touch.
    /// Grown on demand, never beyond [`DENSE_REGISTERS`] slots.
    dense: Vec<Option<RegisterState>>,
    /// Spill tier for register ids at or above [`DENSE_REGISTERS`].
    sparse: BTreeMap<RegisterId, RegisterState>,
    initial: BTreeMap<RegisterId, Value>,
    stats: MemoryStats,
}

/// Register ids below this bound live in the directly indexed slab tier;
/// ids at or above it live in the ordered spill map.
const DENSE_REGISTERS: u64 = 1024;

impl SharedMemory {
    /// Creates an empty shared memory: every register holds
    /// [`Value::Unit`] and has an empty `Pset`.
    pub fn new() -> Self {
        SharedMemory::default()
    }

    /// Creates a shared memory whose registers start with the given initial
    /// values (all others start at [`Value::Unit`]).
    ///
    /// Implementations of initialised objects (e.g. a queue that "initially
    /// contains `n` items") use this to set up their representation.
    pub fn with_initial<I>(initial: I) -> Self
    where
        I: IntoIterator<Item = (RegisterId, Value)>,
    {
        SharedMemory {
            initial: initial.into_iter().collect(),
            ..SharedMemory::default()
        }
    }

    /// Sets the initial value of `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` has already been touched by an operation: initial
    /// values are part of the experiment setup, not of its execution.
    pub fn set_initial(&mut self, reg: RegisterId, value: Value) {
        assert!(
            self.state(reg).is_none(),
            "set_initial({reg}) after the register was touched"
        );
        self.initial.insert(reg, value);
    }

    fn initial_value(&self, reg: RegisterId) -> Value {
        self.initial.get(&reg).cloned().unwrap_or_default()
    }

    /// The state of `reg` if it has been touched, `None` otherwise.
    fn state(&self, reg: RegisterId) -> Option<&RegisterState> {
        if reg.0 < DENSE_REGISTERS {
            self.dense.get(reg.0 as usize)?.as_ref()
        } else {
            self.sparse.get(&reg)
        }
    }

    fn state_mut(&mut self, reg: RegisterId) -> &mut RegisterState {
        if reg.0 < DENSE_REGISTERS {
            let i = reg.0 as usize;
            if i >= self.dense.len() {
                self.dense.resize_with(i + 1, || None);
            }
            if self.dense[i].is_none() {
                let init = self.initial_value(reg);
                self.dense[i] = Some(RegisterState::new(init));
            }
            self.dense[i].as_mut().expect("just materialised")
        } else {
            match self.sparse.entry(reg) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(v) => {
                    let init = self.initial.get(&reg).cloned().unwrap_or_default();
                    v.insert(RegisterState::new(init))
                }
            }
        }
    }

    /// Every touched register with its state, in id order (the slab tier
    /// holds strictly smaller ids than the spill tier, so chaining them
    /// preserves the order).
    fn states(&self) -> impl Iterator<Item = (RegisterId, &RegisterState)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(i, s)| Some((RegisterId(i as u64), s.as_ref()?)))
            .chain(self.sparse.iter().map(|(r, s)| (*r, s)))
    }

    /// Reads the current value of `reg` without perturbing any state
    /// (an omniscient-observer read, used by checkers — not a process step).
    pub fn peek(&self, reg: RegisterId) -> Value {
        self.state(reg)
            .map(|s| s.value().clone())
            .unwrap_or_else(|| self.initial_value(reg))
    }

    /// Whether `p` is currently in `Pset(reg)` (omniscient view).
    pub fn peek_linked(&self, reg: RegisterId, p: ProcessId) -> bool {
        self.state(reg).is_some_and(|s| s.linked(p))
    }

    /// The set of registers that have been touched by at least one
    /// operation, in id order.
    pub fn touched(&self) -> impl Iterator<Item = RegisterId> + '_ {
        self.states().map(|(r, _)| r)
    }

    /// Applies `op` on behalf of process `p` and returns the response,
    /// following the Section-3 semantics exactly.
    pub fn apply(&mut self, p: ProcessId, op: &Operation) -> Response {
        self.stats.record(op.kind());
        match op {
            Operation::Ll(r) => Response::Value(self.state_mut(*r).ll(p)),
            Operation::Validate(r) => {
                let (ok, value) = self.state_mut(*r).validate(p);
                Response::Flagged { ok, value }
            }
            Operation::Sc(r, v) => {
                let (ok, value) = self.state_mut(*r).sc(p, v.clone());
                if ok {
                    self.stats.successful_scs += 1;
                }
                Response::Flagged { ok, value }
            }
            Operation::Swap(r, v) => Response::Value(self.state_mut(*r).swap(v.clone())),
            Operation::Move { src, dst } => {
                // The source is read without mutation; reading it still
                // counts as "touching" so that snapshots list it.
                let moved = self.state_mut(*src).value().clone();
                self.state_mut(*dst).receive_move(moved);
                Response::Ack
            }
        }
    }

    /// Applies a *spurious* `SC` failure on behalf of `p`: if `p` is
    /// linked to `reg` (the SC would have succeeded), the link is silently
    /// dropped — [`RegisterState::suppress_sc`] — and the failed-SC
    /// response is returned. Returns `None` when `p` holds no link, in
    /// which case the SC would fail anyway and suppression would inject
    /// nothing; the caller should apply the operation normally and keep
    /// the fault pending.
    ///
    /// The suppressed SC is still a shared access and is counted in
    /// [`MemoryStats::scs`] (but not as successful).
    pub fn suppress_sc(&mut self, p: ProcessId, reg: RegisterId) -> Option<Response> {
        if !self.state(reg).is_some_and(|s| s.linked(p)) {
            return None;
        }
        self.stats.record(OpKind::Sc);
        let value = self.state_mut(reg).suppress_sc(p);
        Some(Response::Flagged { ok: false, value })
    }

    /// Transient corruption of `reg`: the value becomes `value` and, when
    /// `clear_pset` is set, every link is dropped. A fault-injector
    /// primitive — not a process step, so it is not counted in
    /// [`MemoryStats`].
    pub fn corrupt(&mut self, reg: RegisterId, value: Value, clear_pset: bool) {
        self.state_mut(reg).corrupt(value, clear_pset);
    }

    /// Transient corruption of `reg` *in place*: materialises the register
    /// and hands its value to `mutate` (no copy out, no copy back — the
    /// fault injector rewrites individual fields/words directly). When
    /// `clear_pset` is set, every link is dropped. Like
    /// [`SharedMemory::corrupt`], not counted in [`MemoryStats`].
    pub fn corrupt_in_place(
        &mut self,
        reg: RegisterId,
        clear_pset: bool,
        mutate: impl FnOnce(&mut Value),
    ) {
        self.state_mut(reg).corrupt_in_place(clear_pset, mutate);
    }

    /// Clears every touched register and the operation statistics while
    /// keeping the configured initial values (and the initial map's
    /// allocation): after a reset the memory is observationally the
    /// freshly constructed [`SharedMemory::with_initial`] memory again.
    /// The executor's trial-reset primitive
    /// ([`Executor::reset`](crate::Executor::reset)).
    pub fn reset(&mut self) {
        self.dense.clear();
        self.sparse.clear();
        self.stats = MemoryStats::default();
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// A snapshot of every touched register's value, for end-of-round
    /// comparisons. Untouched registers are omitted (they hold their initial
    /// values by definition).
    pub fn snapshot_values(&self) -> BTreeMap<RegisterId, Value> {
        self.states().map(|(r, s)| (r, s.value().clone())).collect()
    }

    /// A snapshot of every touched register's `Pset`, as bitmasks (one
    /// word copy per register instead of a per-member allocation).
    pub fn snapshot_psets(&self) -> BTreeMap<RegisterId, ProcMask> {
        self.states().map(|(r, s)| (r, s.pset().clone())).collect()
    }
}

/// Counts of operations applied to a [`SharedMemory`], by kind.
///
/// These are *global* counters used for sanity checks and reporting; the
/// per-process shared-access counts that the paper's complexity measure
/// `t(p, R)` needs live in [`crate::Run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Number of `LL` operations applied.
    pub lls: u64,
    /// Number of `validate` operations applied.
    pub validates: u64,
    /// Number of `SC` operations applied (successful or not).
    pub scs: u64,
    /// Number of *successful* `SC` operations.
    pub successful_scs: u64,
    /// Number of `swap` operations applied.
    pub swaps: u64,
    /// Number of `move` operations applied.
    pub moves: u64,
}

impl MemoryStats {
    fn record(&mut self, kind: OpKind) {
        match kind {
            OpKind::Ll => self.lls += 1,
            OpKind::Validate => self.validates += 1,
            OpKind::Sc => self.scs += 1,
            OpKind::Swap => self.swaps += 1,
            OpKind::Move => self.moves += 1,
        }
    }

    /// Total number of shared-memory operations applied.
    pub fn total(&self) -> u64 {
        self.lls + self.validates + self.scs + self.swaps + self.moves
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LL={} validate={} SC={} (ok {}) swap={} move={} total={}",
            self.lls,
            self.validates,
            self.scs,
            self.successful_scs,
            self.swaps,
            self.moves,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    fn int(i: i64) -> Value {
        Value::from(i)
    }

    #[test]
    fn untouched_register_reads_initial_unit() {
        let mem = SharedMemory::new();
        assert_eq!(mem.peek(RegisterId(123)), Value::Unit);
        assert!(!mem.peek_linked(RegisterId(123), P0));
    }

    #[test]
    fn with_initial_seeds_values() {
        let mem = SharedMemory::with_initial([(RegisterId(0), int(5))]);
        assert_eq!(mem.peek(RegisterId(0)), int(5));
        assert_eq!(mem.peek(RegisterId(1)), Value::Unit);
    }

    #[test]
    fn first_ll_of_seeded_register_sees_initial_value() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(5))]);
        assert_eq!(
            mem.apply(P0, &Operation::Ll(RegisterId(0))),
            Response::Value(int(5))
        );
    }

    #[test]
    #[should_panic(expected = "after the register was touched")]
    fn set_initial_after_touch_panics() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.set_initial(RegisterId(0), int(1));
    }

    #[test]
    fn move_copies_value_and_preserves_source() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(9))]);
        // P1 links dst; the move must invalidate that link.
        mem.apply(P1, &Operation::Ll(RegisterId(1)));
        let resp = mem.apply(
            P0,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(1),
            },
        );
        assert_eq!(resp, Response::Ack);
        assert_eq!(mem.peek(RegisterId(1)), int(9));
        assert_eq!(mem.peek(RegisterId(0)), int(9), "source unchanged");
        assert!(!mem.peek_linked(RegisterId(1), P1), "move clears dst Pset");
    }

    #[test]
    fn move_does_not_clear_source_pset() {
        let mut mem = SharedMemory::new();
        mem.apply(P1, &Operation::Ll(RegisterId(0)));
        mem.apply(
            P0,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(1),
            },
        );
        assert!(mem.peek_linked(RegisterId(0), P1), "source Pset unchanged");
    }

    #[test]
    fn self_move_clears_pset_but_keeps_value() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(3))]);
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.apply(
            P1,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(0),
            },
        );
        assert_eq!(mem.peek(RegisterId(0)), int(3));
        assert!(!mem.peek_linked(RegisterId(0), P0));
    }

    #[test]
    fn stats_count_by_kind() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.apply(P0, &Operation::Sc(RegisterId(0), int(1)));
        mem.apply(P1, &Operation::Sc(RegisterId(0), int(2)));
        mem.apply(P0, &Operation::Validate(RegisterId(0)));
        mem.apply(P0, &Operation::Swap(RegisterId(0), int(3)));
        mem.apply(
            P0,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(1),
            },
        );
        let s = mem.stats();
        assert_eq!(s.lls, 1);
        assert_eq!(s.scs, 2);
        assert_eq!(s.successful_scs, 1);
        assert_eq!(s.validates, 1);
        assert_eq!(s.swaps, 1);
        assert_eq!(s.moves, 1);
        assert_eq!(s.total(), 6);
        assert!(s.to_string().contains("total=6"));
    }

    #[test]
    fn suppress_sc_requires_a_live_link_and_counts_as_an_sc() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(3))]);
        // No link yet: suppression has nothing to inject.
        assert_eq!(mem.suppress_sc(P0, RegisterId(0)), None);
        assert_eq!(mem.stats().scs, 0);
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        let resp = mem.suppress_sc(P0, RegisterId(0));
        assert_eq!(
            resp,
            Some(Response::Flagged {
                ok: false,
                value: int(3)
            })
        );
        assert!(!mem.peek_linked(RegisterId(0), P0));
        assert_eq!(mem.peek(RegisterId(0)), int(3), "value untouched");
        let s = mem.stats();
        assert_eq!(s.scs, 1, "a spurious SC is still a shared access");
        assert_eq!(s.successful_scs, 0);
    }

    #[test]
    fn corrupt_rewrites_without_counting_an_operation() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(3))]);
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.corrupt(RegisterId(0), int(99), false);
        assert_eq!(mem.peek(RegisterId(0)), int(99));
        assert!(mem.peek_linked(RegisterId(0), P0), "links kept");
        mem.corrupt(RegisterId(0), int(100), true);
        assert!(!mem.peek_linked(RegisterId(0), P0), "links cleared");
        assert_eq!(mem.stats().total(), 1, "corruption is not a step");
        // Corrupting an untouched register materialises it.
        mem.corrupt(RegisterId(5), int(1), true);
        assert_eq!(mem.peek(RegisterId(5)), int(1));
    }

    #[test]
    fn snapshots_cover_touched_registers_only() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Swap(RegisterId(2), int(4)));
        let values = mem.snapshot_values();
        assert_eq!(values.len(), 1);
        assert_eq!(values[&RegisterId(2)], int(4));
        let touched: Vec<_> = mem.touched().collect();
        assert_eq!(touched, vec![RegisterId(2)]);
    }

    #[test]
    fn dense_and_sparse_tiers_merge_in_id_order() {
        let mut mem = SharedMemory::with_initial([(RegisterId(5_000_000), int(7))]);
        // Touch a spill-tier register first, then two slab registers.
        mem.apply(P0, &Operation::Ll(RegisterId(5_000_000)));
        mem.apply(P0, &Operation::Swap(RegisterId(9), int(1)));
        mem.apply(P0, &Operation::Swap(RegisterId(2), int(2)));
        assert_eq!(
            mem.touched().collect::<Vec<_>>(),
            vec![RegisterId(2), RegisterId(9), RegisterId(5_000_000)]
        );
        assert_eq!(mem.peek(RegisterId(5_000_000)), int(7));
        assert!(mem.peek_linked(RegisterId(5_000_000), P0));
        let values = mem.snapshot_values();
        assert_eq!(values.len(), 3);
        assert_eq!(values[&RegisterId(5_000_000)], int(7));
        // Spill-tier registers reset like slab ones.
        mem.reset();
        assert_eq!(mem.touched().count(), 0);
        assert_eq!(mem.peek(RegisterId(5_000_000)), int(7), "initial kept");
    }

    #[test]
    fn validate_is_readlike_even_without_link() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(7))]);
        let resp = mem.apply(P0, &Operation::Validate(RegisterId(0)));
        assert_eq!(
            resp,
            Response::Flagged {
                ok: false,
                value: int(7)
            }
        );
    }

    #[test]
    fn pset_snapshot_lists_linked_processes() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.apply(P1, &Operation::Ll(RegisterId(0)));
        let psets = mem.snapshot_psets();
        assert_eq!(
            psets[&RegisterId(0)].iter().collect::<Vec<_>>(),
            vec![P0, P1]
        );
    }
}
