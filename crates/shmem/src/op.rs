//! The five shared-memory operations of the paper and their responses.

use crate::{RegisterId, Value};
use std::fmt;

/// A shared-memory operation, as defined in Section 3 of the paper.
///
/// The paper studies exactly five operations. `read` is deliberately absent:
/// as the paper notes, a process can read `R` without perturbing its state by
/// performing `validate(R)` (our [`Operation::Validate`] returns the current
/// value regardless of the validity flag).
///
/// # Examples
///
/// ```
/// use llsc_shmem::{Operation, OpKind, RegisterId, Value};
/// let op = Operation::Sc(RegisterId(4), Value::from(7i64));
/// assert_eq!(op.kind(), OpKind::Sc);
/// assert_eq!(op.target(), RegisterId(4));
/// assert_eq!(op.to_string(), "SC(R4, 7)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operation {
    /// `LL(R)`: returns `value(R)` and adds the caller to `Pset(R)`.
    Ll(RegisterId),
    /// `validate(R)`: returns `(caller ∈ Pset(R), value(R))`. Leaves the
    /// register unchanged; doubles as a read.
    Validate(RegisterId),
    /// `SC(R, v)`: if the caller is in `Pset(R)`, writes `v`, empties
    /// `Pset(R)`, and returns `(true, previous value)`; otherwise leaves the
    /// register unchanged and returns `(false, value(R))`. This is the
    /// paper's *strong* SC, which reports the previous/current value in
    /// addition to the success flag.
    Sc(RegisterId, Value),
    /// `swap(R, v)`: writes `v`, empties `Pset(R)`, and returns the previous
    /// value. Strictly stronger than a plain write.
    Swap(RegisterId, Value),
    /// `move(R_src, R_dst)`: copies `value(R_src)` into `R_dst`, empties
    /// `Pset(R_dst)`, leaves `R_src` unchanged, and returns only `ack`.
    Move {
        /// The register whose value is copied (left unchanged).
        src: RegisterId,
        /// The register receiving the copy (its `Pset` is emptied).
        dst: RegisterId,
    },
}

impl Operation {
    /// The operation's kind, used for the adversary's group partition.
    pub fn kind(&self) -> OpKind {
        match self {
            Operation::Ll(_) => OpKind::Ll,
            Operation::Validate(_) => OpKind::Validate,
            Operation::Sc(..) => OpKind::Sc,
            Operation::Swap(..) => OpKind::Swap,
            Operation::Move { .. } => OpKind::Move,
        }
    }

    /// The register whose *state can change*: the operated-on register, or
    /// the destination for a move.
    pub fn target(&self) -> RegisterId {
        match self {
            Operation::Ll(r)
            | Operation::Validate(r)
            | Operation::Sc(r, _)
            | Operation::Swap(r, _) => *r,
            Operation::Move { dst, .. } => *dst,
        }
    }

    /// The register whose value the caller may learn something about:
    /// the operated-on register, or the source for a move.
    pub fn observed(&self) -> RegisterId {
        match self {
            Operation::Move { src, .. } => *src,
            other => other.target(),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Ll(r) => write!(f, "LL({r})"),
            Operation::Validate(r) => write!(f, "validate({r})"),
            Operation::Sc(r, v) => write!(f, "SC({r}, {v})"),
            Operation::Swap(r, v) => write!(f, "swap({r}, {v})"),
            Operation::Move { src, dst } => write!(f, "move({src}, {dst})"),
        }
    }
}

/// The kind of a shared-memory operation, i.e. [`Operation`] without its
/// operands.
///
/// The Figure-2 adversary partitions processes by the kind of their next
/// operation: LL/validate together form group `G_1`, moves `G_2`, swaps
/// `G_3`, and SCs `G_4`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// An `LL`.
    Ll,
    /// A `validate`.
    Validate,
    /// An `SC`.
    Sc,
    /// A `swap`.
    Swap,
    /// A `move`.
    Move,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Ll => "LL",
            OpKind::Validate => "validate",
            OpKind::Sc => "SC",
            OpKind::Swap => "swap",
            OpKind::Move => "move",
        };
        f.write_str(s)
    }
}

/// The response a shared-memory operation returns to its caller.
///
/// # Examples
///
/// ```
/// use llsc_shmem::{Response, Value};
/// let r = Response::Flagged { ok: true, value: Value::from(3i64) };
/// assert_eq!(r.flag(), Some(true));
/// assert_eq!(r.value(), Some(&Value::from(3i64)));
/// assert_eq!(Response::Ack.value(), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Response {
    /// The value returned by `LL` or `swap` (the register's previous value).
    Value(Value),
    /// The `(boolean, value)` pair returned by the strong `SC` and
    /// `validate` operations.
    Flagged {
        /// For `SC`: whether the SC succeeded. For `validate`: whether the
        /// caller's link is still valid.
        ok: bool,
        /// The register value observed (previous value for a successful SC;
        /// current value otherwise).
        value: Value,
    },
    /// The bare acknowledgement returned by `move`.
    Ack,
}

impl Response {
    /// The success/validity flag, for flagged responses.
    pub fn flag(&self) -> Option<bool> {
        match self {
            Response::Flagged { ok, .. } => Some(*ok),
            _ => None,
        }
    }

    /// The value carried by the response, if any.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Response::Value(v) | Response::Flagged { value: v, .. } => Some(v),
            Response::Ack => None,
        }
    }

    /// Consumes the response and returns the carried value, if any.
    pub fn into_value(self) -> Option<Value> {
        match self {
            Response::Value(v) | Response::Flagged { value: v, .. } => Some(v),
            Response::Ack => None,
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Value(v) => write!(f, "{v}"),
            Response::Flagged { ok, value } => write!(f, "({ok}, {value})"),
            Response::Ack => write!(f, "ack"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<Operation> {
        vec![
            Operation::Ll(RegisterId(1)),
            Operation::Validate(RegisterId(2)),
            Operation::Sc(RegisterId(3), Value::from(1i64)),
            Operation::Swap(RegisterId(4), Value::from(2i64)),
            Operation::Move {
                src: RegisterId(5),
                dst: RegisterId(6),
            },
        ]
    }

    #[test]
    fn kinds_cover_all_variants() {
        let kinds: Vec<_> = all_ops().iter().map(Operation::kind).collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::Ll,
                OpKind::Validate,
                OpKind::Sc,
                OpKind::Swap,
                OpKind::Move
            ]
        );
    }

    #[test]
    fn target_is_mutated_register() {
        let ops = all_ops();
        assert_eq!(ops[0].target(), RegisterId(1));
        assert_eq!(ops[4].target(), RegisterId(6)); // move mutates dst
    }

    #[test]
    fn observed_is_read_register() {
        let ops = all_ops();
        assert_eq!(ops[0].observed(), RegisterId(1));
        assert_eq!(ops[4].observed(), RegisterId(5)); // move reads src
    }

    #[test]
    fn response_accessors() {
        assert_eq!(Response::Ack.flag(), None);
        assert_eq!(Response::Ack.value(), None);
        assert_eq!(Response::Ack.into_value(), None);
        let v = Response::Value(Value::from(9i64));
        assert_eq!(v.flag(), None);
        assert_eq!(v.into_value(), Some(Value::from(9i64)));
        let fl = Response::Flagged {
            ok: false,
            value: Value::Unit,
        };
        assert_eq!(fl.flag(), Some(false));
        assert_eq!(fl.value(), Some(&Value::Unit));
    }

    #[test]
    fn display_forms() {
        assert_eq!(all_ops()[0].to_string(), "LL(R1)");
        assert_eq!(all_ops()[4].to_string(), "move(R5, R6)");
        assert_eq!(OpKind::Validate.to_string(), "validate");
        assert_eq!(Response::Ack.to_string(), "ack");
    }
}
