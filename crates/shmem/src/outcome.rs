//! Structured run termination: [`RunError`] and [`RunOutcome`].
//!
//! The paper's runs can be infinite, and its adversary may delay a process
//! forever — a crash-stop fault is exactly the limit case of that
//! adversary. Instead of panicking when an [`ExecutorConfig`] limit fires
//! (which used to abort whole multi-thread sweeps), the executor reports
//! these conditions as values:
//!
//! * [`RunError`] is the *fault* a driver call returns in its `Err` arm —
//!   the run cannot make further progress for a structural reason;
//! * [`RunOutcome`] is the *classification* of a finished drive, adding
//!   the successful [`RunOutcome::Completed`] arm (see
//!   [`Executor::run_outcome`](crate::Executor::run_outcome)).
//!
//! [`ExecutorConfig`]: crate::ExecutorConfig

use crate::ProcessId;
use std::fmt;

/// A structural fault that stops a run from making progress.
///
/// Returned by the fallible executor entry points
/// ([`Executor::step`](crate::Executor::step),
/// [`Executor::advance_local`](crate::Executor::advance_local),
/// [`Executor::drive`](crate::Executor::drive), …) and propagated as
/// `Result` by every driver in `llsc-core`. Faults are *sticky*: once an
/// executor reports one, every subsequent stepping call returns the same
/// error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunError {
    /// The executor recorded [`ExecutorConfig::max_events`] events — the
    /// simulation ran away (or the caller starved it deliberately; the
    /// bench harness does, to test this path).
    ///
    /// [`ExecutorConfig::max_events`]: crate::ExecutorConfig::max_events
    BudgetExhausted {
        /// Events recorded when the budget fired.
        events: u64,
    },
    /// A single process tossed coins
    /// [`ExecutorConfig::max_local_burst`] times in one
    /// [`advance_local`](crate::Executor::advance_local) burst without
    /// reaching a shared-memory step or termination — its program's local
    /// section diverges, so Phase 1 of an adversary round can never end.
    ///
    /// [`ExecutorConfig::max_local_burst`]: crate::ExecutorConfig::max_local_burst
    DivergedLocalBurst {
        /// The diverging process.
        pid: ProcessId,
    },
    /// The process was crashed by a fault injector (see
    /// [`CrashScheduler`](crate::CrashScheduler)) and was then explicitly
    /// stepped, or a drive ended with this process crashed before
    /// termination.
    Crashed {
        /// The crashed process.
        pid: ProcessId,
    },
    /// An exhaustive subset sweep was requested outside its supported
    /// domain: more processes than the `2^n` mask space handles, or a
    /// trial range extending past `2^n`. Reported by the `llsc-core`
    /// subset sweeps as a pre-flight validation error (no run is ever
    /// started), so chunked jobs surface a structured failure instead of
    /// a panic.
    UnsupportedSweep {
        /// The requested process count.
        n: usize,
        /// The end of the requested trial range.
        end: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BudgetExhausted { events } => {
                write!(f, "run budget exhausted after {events} recorded events")
            }
            RunError::DivergedLocalBurst { pid } => {
                write!(f, "{pid} diverged: local coin-toss burst limit reached")
            }
            RunError::Crashed { pid } => write!(f, "{pid} crashed before terminating"),
            RunError::UnsupportedSweep { n, end } => write!(
                f,
                "subset sweep outside the supported domain: n = {n}, trial range end = {end} \
                 (need n <= 16 and end <= 2^n)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// The classification of a finished drive: [`RunError`] plus the
/// successful arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// Every process terminated.
    Completed,
    /// Every process terminated, but the memory-fault adversary delivered
    /// faults along the way (see [`FaultPlan`](crate::FaultPlan)): the
    /// run *completed under fire*, and whether the algorithm's answers
    /// survived is for the experiment's checker to decide.
    FaultInjected {
        /// Spurious SC failures delivered.
        spurious_sc: u64,
        /// Register corruptions delivered.
        corruptions: u64,
    },
    /// The event budget fired, or the drive stopped (step limit, scheduler
    /// declined) with live processes remaining.
    BudgetExhausted {
        /// Events recorded when the run stopped.
        events: u64,
    },
    /// A process's local section diverged (see
    /// [`RunError::DivergedLocalBurst`]).
    DivergedLocalBurst {
        /// The diverging process.
        pid: ProcessId,
    },
    /// All surviving processes terminated but this one was crashed — the
    /// run ended in a (correctly reported) partial execution.
    Crashed {
        /// The first crashed, non-terminated process (in id order).
        pid: ProcessId,
    },
}

impl RunOutcome {
    /// `true` iff the run completed (every process terminated) — with or
    /// without injected faults.
    pub fn is_completed(&self) -> bool {
        matches!(
            self,
            RunOutcome::Completed | RunOutcome::FaultInjected { .. }
        )
    }

    /// The outcome as a `Result`: `Ok(())` for the completing arms
    /// ([`RunOutcome::Completed`] and [`RunOutcome::FaultInjected`] —
    /// every process terminated), otherwise the corresponding
    /// [`RunError`].
    pub fn into_result(self) -> Result<(), RunError> {
        match self {
            RunOutcome::Completed | RunOutcome::FaultInjected { .. } => Ok(()),
            RunOutcome::BudgetExhausted { events } => Err(RunError::BudgetExhausted { events }),
            RunOutcome::DivergedLocalBurst { pid } => Err(RunError::DivergedLocalBurst { pid }),
            RunOutcome::Crashed { pid } => Err(RunError::Crashed { pid }),
        }
    }

    /// A short stable label, used by the experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::FaultInjected { .. } => "fault-injected",
            RunOutcome::BudgetExhausted { .. } => "budget-exhausted",
            RunOutcome::DivergedLocalBurst { .. } => "diverged",
            RunOutcome::Crashed { .. } => "crashed",
        }
    }
}

impl From<RunError> for RunOutcome {
    fn from(e: RunError) -> Self {
        match e {
            RunError::BudgetExhausted { events } => RunOutcome::BudgetExhausted { events },
            RunError::DivergedLocalBurst { pid } => RunOutcome::DivergedLocalBurst { pid },
            RunError::Crashed { pid } => RunOutcome::Crashed { pid },
            // Pre-flight validation: no run was started, so there is no
            // more specific classification than "stopped with 0 events".
            RunError::UnsupportedSweep { .. } => RunOutcome::BudgetExhausted { events: 0 },
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => f.write_str("completed"),
            RunOutcome::FaultInjected {
                spurious_sc,
                corruptions,
            } => write!(
                f,
                "completed under {spurious_sc} spurious SC failure(s) and \
                 {corruptions} corruption(s)"
            ),
            other => match other.into_result() {
                Err(e) => e.fmt(f),
                Ok(()) => unreachable!("the completing arms are handled above"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_round_trips_through_outcome() {
        for e in [
            RunError::BudgetExhausted { events: 7 },
            RunError::DivergedLocalBurst { pid: ProcessId(3) },
            RunError::Crashed { pid: ProcessId(0) },
        ] {
            let o = RunOutcome::from(e);
            assert!(!o.is_completed());
            assert_eq!(o.into_result(), Err(e));
        }
        assert_eq!(RunOutcome::Completed.into_result(), Ok(()));
        assert!(RunOutcome::Completed.is_completed());
    }

    #[test]
    fn fault_injected_counts_as_completed() {
        let o = RunOutcome::FaultInjected {
            spurious_sc: 2,
            corruptions: 1,
        };
        assert!(o.is_completed(), "every process terminated");
        assert_eq!(o.into_result(), Ok(()));
        assert_eq!(o.label(), "fault-injected");
        let s = o.to_string();
        assert!(s.contains("2 spurious"), "{s}");
        assert!(s.contains("1 corruption"), "{s}");
    }

    #[test]
    fn displays_are_descriptive() {
        assert!(RunError::BudgetExhausted { events: 9 }
            .to_string()
            .contains("9 recorded events"));
        assert!(RunError::DivergedLocalBurst { pid: ProcessId(2) }
            .to_string()
            .contains("p2"));
        assert_eq!(RunOutcome::Completed.to_string(), "completed");
        assert_eq!(
            RunOutcome::Crashed { pid: ProcessId(1) }.to_string(),
            RunError::Crashed { pid: ProcessId(1) }.to_string()
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RunOutcome::Completed.label(), "completed");
        assert_eq!(
            RunOutcome::BudgetExhausted { events: 1 }.label(),
            "budget-exhausted"
        );
        assert_eq!(
            RunOutcome::DivergedLocalBurst { pid: ProcessId(0) }.label(),
            "diverged"
        );
        assert_eq!(RunOutcome::Crashed { pid: ProcessId(0) }.label(), "crashed");
    }
}
