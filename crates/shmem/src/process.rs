//! Processes as resumable state machines.

use crate::{Operation, Response, Value};
use std::fmt;

/// What a process wants to do next.
///
/// Per Section 3, a non-terminated process has two kinds of steps available:
/// a local coin toss, or an operation on shared memory. Termination is
/// modelled as a third action carrying the process's return value (the
/// wakeup problem, for instance, requires every process to terminate
/// "returning either 0 or 1").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Toss a local coin; the outcome arrives as [`Feedback::Coin`].
    Toss,
    /// Perform a shared-memory operation; its result arrives as
    /// [`Feedback::Response`].
    Invoke(Operation),
    /// Enter a termination state, returning the given value. The process
    /// has no further steps.
    Return(Value),
}

impl Action {
    /// The pending shared-memory operation, if this action is an
    /// [`Action::Invoke`].
    pub fn operation(&self) -> Option<&Operation> {
        match self {
            Action::Invoke(op) => Some(op),
            _ => None,
        }
    }

    /// `true` iff this action terminates the process.
    pub fn is_return(&self) -> bool {
        matches!(self, Action::Return(_))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Toss => write!(f, "toss"),
            Action::Invoke(op) => write!(f, "{op}"),
            Action::Return(v) => write!(f, "return {v}"),
        }
    }
}

/// The information a process receives between two of its actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feedback {
    /// The very first activation: no outcome has been delivered yet.
    Start,
    /// The outcome of the coin toss requested by the previous
    /// [`Action::Toss`]. Outcomes range over the paper's arbitrary
    /// `COIN-RANGE`, embedded here as `u64`.
    Coin(u64),
    /// The response to the operation requested by the previous
    /// [`Action::Invoke`].
    Response(Response),
}

impl fmt::Display for Feedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feedback::Start => write!(f, "start"),
            Feedback::Coin(c) => write!(f, "coin={c}"),
            Feedback::Response(r) => write!(f, "resp={r}"),
        }
    }
}

/// A process's program: a deterministic automaton driven by [`Feedback`].
///
/// The executor activates a program by calling [`Program::next`] with the
/// feedback for its previous action ([`Feedback::Start`] on the first
/// activation) and records the returned [`Action`] as the process's pending
/// step. A program must be *deterministic given its feedback*: all
/// nondeterminism flows through explicit coin tosses, exactly as in the
/// paper's model (this is what makes toss assignments `A` determine
/// `(All, A)`-runs uniquely).
///
/// After returning [`Action::Return`], `next` is never called again.
///
/// Programs are usually written with the continuation-passing helpers in
/// [`crate::dsl`] rather than by implementing this trait manually.
pub trait Program {
    /// Consumes the feedback for the previous action and produces the next
    /// action.
    fn next(&mut self, feedback: Feedback) -> Action;
}

/// A factory for the per-process programs of an `n`-process algorithm.
///
/// The lower-bound machinery re-executes algorithms from their initial
/// configurations many times (for the `(All, A)`-run, each `(S, A)`-run,
/// and each toss assignment), so algorithms are described by factories
/// rather than by live program instances.
///
/// Algorithms are `Send + Sync`: the parallel sweep engine
/// ([`crate::sweep`]) shares one factory across worker threads, each of
/// which spawns its own (non-`Send`) programs. Factories are immutable
/// descriptions, so this costs implementations nothing.
pub trait Algorithm: Send + Sync {
    /// A short human-readable name, used in reports and tables.
    fn name(&self) -> &'static str;

    /// Creates the program of process `pid` in an `n`-process instance.
    fn spawn(&self, pid: crate::ProcessId, n: usize) -> Box<dyn Program>;

    /// Initial shared-memory contents this algorithm assumes, as
    /// `(register, value)` pairs. Defaults to none (all registers start at
    /// [`Value::Unit`]).
    fn initial_memory(&self, _n: usize) -> Vec<(crate::RegisterId, Value)> {
        Vec::new()
    }
}

/// An [`Algorithm`] built from a closure, convenient for tests and
/// experiments.
///
/// # Examples
///
/// ```
/// use llsc_shmem::{FnAlgorithm, Algorithm, ProcessId, Value};
/// use llsc_shmem::dsl::done;
/// let alg = FnAlgorithm::new("trivial", |pid: ProcessId, _n| {
///     done(Value::from(pid.0 as i64)).into_program()
/// });
/// assert_eq!(alg.name(), "trivial");
/// let mut prog = alg.spawn(ProcessId(1), 2);
/// # use llsc_shmem::{Program, Feedback, Action};
/// assert_eq!(prog.next(Feedback::Start), Action::Return(Value::from(1i64)));
/// ```
pub struct FnAlgorithm<F> {
    name: &'static str,
    spawn: F,
    initial: Vec<(crate::RegisterId, Value)>,
}

impl<F> FnAlgorithm<F>
where
    F: Fn(crate::ProcessId, usize) -> Box<dyn Program> + Send + Sync,
{
    /// Creates an algorithm from a spawn closure.
    pub fn new(name: &'static str, spawn: F) -> Self {
        FnAlgorithm {
            name,
            spawn,
            initial: Vec::new(),
        }
    }

    /// Adds initial shared-memory contents.
    pub fn with_initial_memory(mut self, initial: Vec<(crate::RegisterId, Value)>) -> Self {
        self.initial = initial;
        self
    }
}

impl<F> fmt::Debug for FnAlgorithm<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnAlgorithm")
            .field("name", &self.name)
            .finish()
    }
}

impl<F> Algorithm for FnAlgorithm<F>
where
    F: Fn(crate::ProcessId, usize) -> Box<dyn Program> + Send + Sync,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn spawn(&self, pid: crate::ProcessId, n: usize) -> Box<dyn Program> {
        (self.spawn)(pid, n)
    }

    fn initial_memory(&self, _n: usize) -> Vec<(crate::RegisterId, Value)> {
        self.initial.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProcessId, RegisterId};

    #[test]
    fn action_accessors() {
        let op = Operation::Ll(RegisterId(0));
        assert_eq!(Action::Invoke(op.clone()).operation(), Some(&op));
        assert_eq!(Action::Toss.operation(), None);
        assert!(Action::Return(Value::Unit).is_return());
        assert!(!Action::Toss.is_return());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Action::Toss.to_string(), "toss");
        assert_eq!(Action::Return(Value::from(1i64)).to_string(), "return 1");
        assert_eq!(Feedback::Start.to_string(), "start");
        assert_eq!(Feedback::Coin(3).to_string(), "coin=3");
    }

    #[test]
    fn fn_algorithm_spawns_independent_programs() {
        let alg = FnAlgorithm::new("t", |pid: ProcessId, _n| {
            crate::dsl::done(Value::from(pid.0 as i64)).into_program()
        });
        let mut a = alg.spawn(ProcessId(0), 2);
        let mut b = alg.spawn(ProcessId(1), 2);
        assert_eq!(a.next(Feedback::Start), Action::Return(Value::from(0i64)));
        assert_eq!(b.next(Feedback::Start), Action::Return(Value::from(1i64)));
    }

    #[test]
    fn fn_algorithm_initial_memory() {
        let alg = FnAlgorithm::new("t", |_pid, _n| crate::dsl::done(Value::Unit).into_program())
            .with_initial_memory(vec![(RegisterId(0), Value::from(5i64))]);
        assert_eq!(
            alg.initial_memory(4),
            vec![(RegisterId(0), Value::from(5i64))]
        );
    }
}
