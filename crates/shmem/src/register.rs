//! The state of a single shared register: `value(R)` and `Pset(R)`.

use crate::{ProcMask, ProcessId, Value};
use std::fmt;

/// The state of a shared register.
///
/// Per Section 3 of the paper, a register's state is the pair
/// `(value(R), Pset(R))`, where `Pset(R)` ("process set") holds the
/// processes whose latest `LL` of `R` has not been invalidated by a
/// successful `SC`, `swap`, or `move` into `R`.
///
/// The mutating methods implement the paper's operation semantics exactly;
/// [`crate::SharedMemory`] dispatches to them.
///
/// # Examples
///
/// ```
/// use llsc_shmem::{ProcessId, RegisterState, Value};
/// let mut r = RegisterState::new(Value::from(0i64));
/// let (p, q) = (ProcessId(0), ProcessId(1));
/// assert_eq!(r.ll(p), Value::from(0i64));
/// // q never LL'd, so q's SC fails and leaves the register unchanged.
/// assert_eq!(r.sc(q, Value::from(9i64)), (false, Value::from(0i64)));
/// // p's SC succeeds and returns the previous value.
/// assert_eq!(r.sc(p, Value::from(5i64)), (true, Value::from(0i64)));
/// assert_eq!(r.value(), &Value::from(5i64));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegisterState {
    value: Value,
    pset: ProcMask,
}

impl RegisterState {
    /// Creates a register holding `value` with an empty `Pset`.
    pub fn new(value: Value) -> Self {
        RegisterState {
            value,
            pset: ProcMask::new(),
        }
    }

    /// The register's current value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The register's current `Pset`.
    pub fn pset(&self) -> &ProcMask {
        &self.pset
    }

    /// Whether `p` currently holds a valid link on this register.
    pub fn linked(&self, p: ProcessId) -> bool {
        self.pset.contains(p)
    }

    /// `LL(R)` by `p`: adds `p` to `Pset(R)` and returns `value(R)`.
    pub fn ll(&mut self, p: ProcessId) -> Value {
        self.pset.insert(p);
        self.value.clone()
    }

    /// `validate(R)` by `p`: returns `(p ∈ Pset(R), value(R))` without
    /// changing the register.
    pub fn validate(&self, p: ProcessId) -> (bool, Value) {
        (self.linked(p), self.value.clone())
    }

    /// `SC(R, v)` by `p`.
    ///
    /// If `p ∈ Pset(R)` the SC is *successful*: the value becomes `v`,
    /// `Pset(R)` is emptied, and `(true, previous value)` is returned.
    /// Otherwise the SC is *unsuccessful*: the register is unchanged and
    /// `(false, current value)` is returned. (The paper's strong SC returns
    /// the register value in both cases.)
    pub fn sc(&mut self, p: ProcessId, v: Value) -> (bool, Value) {
        if self.linked(p) {
            let prev = std::mem::replace(&mut self.value, v);
            self.pset.clear();
            (true, prev)
        } else {
            (false, self.value.clone())
        }
    }

    /// `swap(R, v)`: unconditionally writes `v`, empties `Pset(R)`, and
    /// returns the previous value.
    pub fn swap(&mut self, v: Value) -> Value {
        self.pset.clear();
        std::mem::replace(&mut self.value, v)
    }

    /// Receives a `move` *into* this register: the value becomes `moved`
    /// (a copy of the source register's value) and `Pset` is emptied.
    /// The move's source register is left untouched by construction —
    /// `move` reads it without calling any mutator.
    pub fn receive_move(&mut self, moved: Value) {
        self.value = moved;
        self.pset.clear();
    }

    /// A *spurious* `SC` failure by `p` — the weak-LL/SC fault mode: `p`'s
    /// reservation is silently lost (as by a cache-line eviction), so only
    /// `p` leaves `Pset(R)`; the value and every other process's link are
    /// untouched. Returns the current value, matching the failed-SC
    /// response shape.
    pub fn suppress_sc(&mut self, p: ProcessId) -> Value {
        self.pset.remove(p);
        self.value.clone()
    }

    /// Transient corruption: the value becomes `v` and, when `clear_pset`
    /// is set, every link is dropped. A fault-injector primitive, not one
    /// of the paper's operations.
    pub fn corrupt(&mut self, v: Value, clear_pset: bool) {
        self.value = v;
        if clear_pset {
            self.pset.clear();
        }
    }

    /// Transient corruption that rewrites the stored value *in place* via
    /// `mutate` instead of replacing it wholesale — the injector flips
    /// words/fields directly, so no scratch copy of the value is built.
    pub fn corrupt_in_place(&mut self, clear_pset: bool, mutate: impl FnOnce(&mut Value)) {
        mutate(&mut self.value);
        if clear_pset {
            self.pset.clear();
        }
    }
}

impl fmt::Display for RegisterState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {{", self.value)?;
        for (i, p) in self.pset.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);
    const P2: ProcessId = ProcessId(2);

    fn int(i: i64) -> Value {
        Value::from(i)
    }

    #[test]
    fn new_register_has_empty_pset() {
        let r = RegisterState::new(int(3));
        assert_eq!(r.value(), &int(3));
        assert!(r.pset().is_empty());
        assert!(!r.linked(P0));
    }

    #[test]
    fn ll_links_and_returns_value() {
        let mut r = RegisterState::new(int(1));
        assert_eq!(r.ll(P0), int(1));
        assert!(r.linked(P0));
        assert!(!r.linked(P1));
    }

    #[test]
    fn sc_without_ll_fails_and_reports_current_value() {
        let mut r = RegisterState::new(int(1));
        assert_eq!(r.sc(P0, int(9)), (false, int(1)));
        assert_eq!(r.value(), &int(1));
    }

    #[test]
    fn sc_after_ll_succeeds_once() {
        let mut r = RegisterState::new(int(1));
        r.ll(P0);
        assert_eq!(r.sc(P0, int(2)), (true, int(1)));
        // Pset was emptied, so a second SC by the same process fails.
        assert_eq!(r.sc(P0, int(3)), (false, int(2)));
    }

    #[test]
    fn successful_sc_invalidates_all_links() {
        let mut r = RegisterState::new(int(0));
        r.ll(P0);
        r.ll(P1);
        r.ll(P2);
        assert!(r.sc(P1, int(7)).0);
        for p in [P0, P1, P2] {
            assert!(!r.linked(p), "{p} should be unlinked");
        }
    }

    #[test]
    fn failed_sc_preserves_other_links() {
        let mut r = RegisterState::new(int(0));
        r.ll(P0);
        assert!(!r.sc(P1, int(7)).0);
        assert!(r.linked(P0), "failed SC must not disturb P0's link");
    }

    #[test]
    fn validate_reflects_link_and_reads_value() {
        let mut r = RegisterState::new(int(4));
        assert_eq!(r.validate(P0), (false, int(4)));
        r.ll(P0);
        assert_eq!(r.validate(P0), (true, int(4)));
        r.swap(int(5));
        assert_eq!(r.validate(P0), (false, int(5)));
    }

    #[test]
    fn validate_does_not_mutate() {
        let mut r = RegisterState::new(int(4));
        r.ll(P1);
        let before = r.clone();
        let _ = r.validate(P0);
        let _ = r.validate(P1);
        assert_eq!(r, before);
    }

    #[test]
    fn swap_returns_previous_and_clears_pset() {
        let mut r = RegisterState::new(int(1));
        r.ll(P0);
        assert_eq!(r.swap(int(2)), int(1));
        assert_eq!(r.value(), &int(2));
        assert!(!r.linked(P0));
    }

    #[test]
    fn move_into_overwrites_and_clears_pset() {
        let mut r = RegisterState::new(int(1));
        r.ll(P0);
        r.receive_move(int(42));
        assert_eq!(r.value(), &int(42));
        assert!(r.pset().is_empty());
    }

    #[test]
    fn ll_sc_interleaving_matches_paper_definition() {
        // p LLs; q LLs; q SCs successfully; p's SC must fail because q's
        // successful SC happened "in the interim".
        let mut r = RegisterState::new(int(0));
        r.ll(P0);
        r.ll(P1);
        assert!(r.sc(P1, int(1)).0);
        assert!(!r.sc(P0, int(2)).0);
        assert_eq!(r.value(), &int(1));
    }

    #[test]
    fn suppress_sc_drops_only_the_callers_link() {
        let mut r = RegisterState::new(int(4));
        r.ll(P0);
        r.ll(P1);
        assert_eq!(r.suppress_sc(P0), int(4), "value reported, not changed");
        assert!(!r.linked(P0), "the caller's reservation is lost");
        assert!(r.linked(P1), "other links survive a spurious failure");
        assert_eq!(r.value(), &int(4));
        // The victim's retry must re-LL before an SC can succeed again.
        assert_eq!(r.sc(P0, int(9)), (false, int(4)));
        assert!(r.sc(P1, int(9)).0, "P1's link was untouched");
    }

    #[test]
    fn corrupt_replaces_value_and_optionally_clears_pset() {
        let mut r = RegisterState::new(int(1));
        r.ll(P0);
        r.corrupt(int(7), false);
        assert_eq!(r.value(), &int(7));
        assert!(r.linked(P0), "clear_pset=false keeps links");
        r.corrupt(int(8), true);
        assert_eq!(r.value(), &int(8));
        assert!(!r.linked(P0), "clear_pset=true drops links");
    }

    #[test]
    fn display_shows_value_and_pset() {
        let mut r = RegisterState::new(int(3));
        r.ll(P1);
        assert_eq!(r.to_string(), "⟨3, {p1}⟩");
    }
}
