//! Self-contained failure reproducers: serialize, replay, and shrink.
//!
//! A [`ReproCase`] captures everything a single executor run depends on —
//! algorithm name, process count, toss assignment, schedule, crash plan,
//! fault plan, and budgets — plus the outcome it produced, as a portable
//! JSON artifact. Because every ingredient is a pure function of the
//! recorded fields (seeded tosses, seeded plans, explicit schedules),
//! re-executing the case reproduces the original run event-for-event:
//! the debugging loop the paper's adversary argument is built on (a
//! specific schedule plus specific coin tosses forcing a bad outcome,
//! Section 5 / Figure 2) becomes a file you can pass around.
//!
//! Three layers live here:
//!
//! * **serialization** — [`ReproCase::to_json`] / [`ReproCase::from_json`],
//!   a hand-rolled format (this workspace builds with no external crates;
//!   see `llsc-bench`'s tables for the same convention: every scalar is a
//!   JSON string, so one tiny parser suffices);
//! * **replay** — [`execute`] rebuilds the executor and drives it under
//!   the recorded schedule and plans, returning the live executor, the
//!   classified [`RunOutcome`], and the explicit pick trace;
//! * **shrinking** — [`shrink`] delta-debugs the schedule, the
//!   participating process set, and the injected fault/crash lists against
//!   a caller-supplied failure-class oracle, keeping every reduction that
//!   preserves the class.
//!
//! The algorithm itself is *not* serialized (programs are code); a case
//! records the algorithm's name and the caller resolves it back to a
//! constructor — `llsc-bench` keeps the registry for the experiment
//! algorithms, and the `llsc replay` / `llsc shrink` subcommands glue the
//! two together.

use crate::json;
use crate::scheduler::RecordingScheduler;
use crate::{
    Algorithm, CrashPlan, CrashScheduler, Executor, ExecutorConfig, FaultPlan, ListScheduler,
    ProcessId, RandomScheduler, RecoveringCrashScheduler, RoundRobinScheduler, RunOutcome,
    Scheduler, SeededTosses, TossAssignment, ZeroTosses,
};
use std::fmt::Write as _;
use std::sync::Arc;

/// The coin-toss assignment of a reproducible run.
///
/// Only pure seeded assignments are representable — which is all the
/// experiment sweeps use — so a case never needs to embed a full toss log:
/// the seed *is* the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TossSpec {
    /// Every toss answers 0 ([`ZeroTosses`]).
    Zero,
    /// Tosses drawn from [`SeededTosses`] under the given seed.
    Seeded(u64),
}

impl TossSpec {
    /// Builds the toss assignment this spec describes.
    pub fn assignment(&self) -> Arc<dyn TossAssignment> {
        match self {
            TossSpec::Zero => Arc::new(ZeroTosses),
            TossSpec::Seeded(seed) => Arc::new(SeededTosses::new(*seed)),
        }
    }
}

/// The schedule of a reproducible run: a named deterministic scheduler,
/// or an explicit pick-by-pick trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// [`RoundRobinScheduler`] starting at `p_0`.
    RoundRobin,
    /// [`RandomScheduler`] under the given seed.
    Random {
        /// The scheduler's seed.
        seed: u64,
    },
    /// An explicit pick list, replayed through a [`ListScheduler`]. This
    /// is the form the shrinker works on: [`execute`] records the trace
    /// of a named schedule, and [`ReproCase::materialized`] swaps it in.
    List(Vec<ProcessId>),
    /// A hardware-backend run: the OS scheduler chose the interleaving,
    /// so the schedule itself is not replayable. [`execute`] re-runs the
    /// case on the simulator under a round-robin schedule — the recorded
    /// faults, crashes, and tosses still apply, which is usually enough
    /// to triage a hardware failure deterministically.
    Hardware,
}

impl ScheduleSpec {
    /// The number of explicit picks, or 0 for a named schedule.
    pub fn len(&self) -> usize {
        match self {
            ScheduleSpec::List(picks) => picks.len(),
            _ => 0,
        }
    }

    /// `true` iff this is an explicit empty pick list.
    pub fn is_empty(&self) -> bool {
        matches!(self, ScheduleSpec::List(picks) if picks.is_empty())
    }
}

/// The crash-*recovery* regime of a reproducible run: when present, the
/// case's crash plan is driven through a
/// [`RecoveringCrashScheduler`] instead of a [`CrashScheduler`] — each
/// victim is revived `delay` events after crashing, and may be
/// re-crashed up to `budget` times in total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverySpec {
    /// Events between a crash and the victim's recovery.
    pub delay: u64,
    /// Maximum crashes per victim (>= 1).
    pub budget: u64,
}

/// Where a case came from: the sweep that produced it, so a failure row
/// in an artifact and the repro file on disk can be cross-referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// The sweep seed the trial seed was derived from.
    pub sweep_seed: u64,
    /// The trial's index within the sweep.
    pub trial_index: usize,
    /// The retry attempt that produced this case (0 = first attempt).
    pub attempt: u32,
}

/// A self-contained, replayable description of one executor run.
///
/// Every field is data (no code): the algorithm is referenced by name and
/// resolved by the caller at replay time. See the module docs for the
/// round-trip guarantees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReproCase {
    /// The experiment that produced the case (`"e15"`, `"e16"`, `"e17"`,
    /// or any caller-chosen tag).
    pub experiment: String,
    /// The algorithm's registry name (e.g. `"hardened-counter-wakeup"`).
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// The coin-toss assignment.
    pub toss: TossSpec,
    /// The schedule: named or explicit.
    pub schedule: ScheduleSpec,
    /// Crash-stop faults injected during the run.
    pub crashes: CrashPlan,
    /// The crash-recovery regime, if the run recovers its crash victims
    /// (`None` reproduces the plain crash-stop model; old artifacts
    /// without the field parse as `None`).
    pub recovery: Option<RecoverySpec>,
    /// Memory faults injected during the run.
    pub faults: FaultPlan,
    /// The executor's event budget ([`ExecutorConfig::max_events`]).
    pub max_events: u64,
    /// The driver's step budget.
    pub max_steps: u64,
    /// The recorded [`RunOutcome`] in `Debug` form — replay compares the
    /// re-executed outcome against this byte-for-byte.
    pub outcome: String,
    /// The recorded failure class (e.g. `"stalled"`, `"silent-wrong"`);
    /// the shrinker preserves it.
    pub class: String,
    /// The producing sweep, if the case came from one.
    pub provenance: Option<Provenance>,
}

impl ReproCase {
    /// The case's reproducer size: explicit schedule picks plus injected
    /// crash and fault entries. This is the quantity the shrinker
    /// minimizes (named schedules count 0 picks; materialize first).
    pub fn size(&self) -> usize {
        self.schedule.len()
            + self.crashes.len()
            + self.faults.spurious().len()
            + self.faults.corruptions().len()
    }

    /// A copy of the case with its schedule replaced by the explicit
    /// `trace` (as recorded by [`execute`]), ready for shrinking.
    pub fn materialized(&self, trace: Vec<ProcessId>) -> ReproCase {
        ReproCase {
            schedule: ScheduleSpec::List(trace),
            ..self.clone()
        }
    }
}

/// The result of [`execute`]: the driven executor (for safety checks and
/// telemetry reads), the classified outcome, and the explicit pick trace.
#[derive(Debug)]
pub struct Replayed {
    /// The executor after the drive; its [`Executor::run`] is the full
    /// recorded run.
    pub exec: Executor,
    /// [`Executor::run_outcome`] at the end of the drive.
    pub outcome: RunOutcome,
    /// Every scheduler pick handed to the executor, in order. Replaying
    /// this trace as a [`ScheduleSpec::List`] reproduces the run.
    pub trace: Vec<ProcessId>,
}

/// Re-executes a case against `alg` (the algorithm its
/// [`ReproCase::algorithm`] names), byte-deterministically.
///
/// The drive layers the recorded crash plan over the recorded schedule
/// exactly as the fault experiments do ([`CrashScheduler`] with the
/// schedule as its inner scheduler — or a [`RecoveringCrashScheduler`]
/// when the case records a [`RecoverySpec`]; an empty crash plan makes
/// either identical to a plain drive), with the fault plan armed on the
/// executor.
pub fn execute(case: &ReproCase, alg: &dyn Algorithm) -> Replayed {
    let config = ExecutorConfig {
        max_events: case.max_events,
        ..ExecutorConfig::default()
    };
    let mut exec = Executor::new(alg, case.n, case.toss.assignment(), config);
    exec.set_fault_plan(case.faults.clone());
    let trace = match &case.schedule {
        ScheduleSpec::RoundRobin => {
            drive_recorded(&mut exec, RoundRobinScheduler::new(), case, alg)
        }
        ScheduleSpec::Random { seed } => {
            drive_recorded(&mut exec, RandomScheduler::new(*seed), case, alg)
        }
        ScheduleSpec::List(picks) => drive_recorded(
            &mut exec,
            ListScheduler::new(picks.iter().copied()),
            case,
            alg,
        ),
        // The OS-chosen interleaving is gone; triage on the simulator
        // under the deterministic round-robin stand-in.
        ScheduleSpec::Hardware => drive_recorded(&mut exec, RoundRobinScheduler::new(), case, alg),
    };
    let outcome = exec.run_outcome();
    Replayed {
        exec,
        outcome,
        trace,
    }
}

fn drive_recorded<S: Scheduler>(
    exec: &mut Executor,
    inner: S,
    case: &ReproCase,
    alg: &dyn Algorithm,
) -> Vec<ProcessId> {
    let mut recorder = RecordingScheduler::new(inner);
    // Outcome classification reads the executor's sticky fault state, so
    // the drives' own error results are redundant here.
    match case.recovery {
        Some(spec) => {
            let mut driver = RecoveringCrashScheduler::new(
                &mut recorder,
                &case.crashes,
                spec.delay,
                spec.budget,
            );
            let _ = driver.drive(exec, alg, case.max_steps);
        }
        None => {
            let mut driver = CrashScheduler::new(&mut recorder, case.crashes.clone());
            let _ = driver.drive(exec, case.max_steps);
        }
    }
    recorder.into_trace()
}

/// One accepted reduction plus bookkeeping, as recorded by [`shrink`].
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimized case. Its `outcome` field is *not* refreshed (the
    /// oracle only reports classes); callers that want the shrunk run's
    /// outcome string re-execute once and overwrite it.
    pub case: ReproCase,
    /// Human-readable log of every accepted reduction.
    pub log: Vec<String>,
    /// Oracle invocations spent.
    pub replays: usize,
    /// [`ReproCase::size`] before shrinking.
    pub initial_size: usize,
    /// [`ReproCase::size`] after shrinking.
    pub final_size: usize,
}

/// Delta-debugs `case` down to a smaller reproducer with the same failure
/// class.
///
/// `oracle` executes a candidate and returns its failure class (`None`
/// when the candidate cannot be executed at all); a candidate reduction
/// is kept iff its class equals `case.class`. Four passes repeat until a
/// fixpoint (or until `max_replays` oracle calls have been spent):
///
/// 1. **schedule** — classic ddmin over the explicit pick list, removing
///    chunks of halving size (skipped for named schedules: call
///    [`ReproCase::materialized`] with a recorded trace first);
/// 2. **process set** — for each process appearing in the schedule, try
///    dropping *all* of its picks at once;
/// 3. **crashes** — try dropping each crash entry;
/// 4. **faults** — try dropping each spurious-SC threshold and each
///    corruption entry.
///
/// Everything is deterministic: candidate order is fixed, the oracle is
/// pure, so the minimal reproducer is a pure function of the input case.
pub fn shrink<F>(case: &ReproCase, mut oracle: F, max_replays: usize) -> ShrinkReport
where
    F: FnMut(&ReproCase) -> Option<String>,
{
    let target = case.class.clone();
    let mut current = case.clone();
    let mut log = Vec::new();
    let mut replays = 0usize;
    let initial_size = case.size();

    // Tests a candidate against the oracle, honoring the replay budget.
    let mut keeps_class = |cand: &ReproCase, replays: &mut usize| -> bool {
        if *replays >= max_replays {
            return false;
        }
        *replays += 1;
        oracle(cand).as_deref() == Some(target.as_str())
    };

    loop {
        let size_before = current.size();

        // Pass 1: ddmin over the explicit schedule.
        if let ScheduleSpec::List(picks) = &current.schedule {
            let mut picks = picks.clone();
            let mut chunk = (picks.len() / 2).max(1);
            loop {
                let mut i = 0;
                while i < picks.len() {
                    let mut cand_picks = picks.clone();
                    cand_picks.drain(i..(i + chunk).min(cand_picks.len()));
                    let cand = ReproCase {
                        schedule: ScheduleSpec::List(cand_picks.clone()),
                        ..current.clone()
                    };
                    if keeps_class(&cand, &mut replays) {
                        log.push(format!(
                            "schedule: removed {} pick(s) at {} ({} -> {})",
                            picks.len() - cand_picks.len(),
                            i,
                            picks.len(),
                            cand_picks.len()
                        ));
                        picks = cand_picks;
                    } else {
                        i += chunk;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
            current.schedule = ScheduleSpec::List(picks);
        }

        // Pass 2: drop every pick of one process at a time.
        if let ScheduleSpec::List(picks) = &current.schedule {
            let mut pids: Vec<ProcessId> = picks.clone();
            pids.sort_unstable();
            pids.dedup();
            for pid in pids.into_iter().rev() {
                let ScheduleSpec::List(picks) = &current.schedule else {
                    unreachable!("pass 2 only rewrites List schedules");
                };
                let cand_picks: Vec<ProcessId> =
                    picks.iter().copied().filter(|p| *p != pid).collect();
                if cand_picks.len() == picks.len() {
                    continue;
                }
                let cand = ReproCase {
                    schedule: ScheduleSpec::List(cand_picks.clone()),
                    ..current.clone()
                };
                if keeps_class(&cand, &mut replays) {
                    log.push(format!(
                        "process set: removed all {} pick(s) of {pid}",
                        picks.len() - cand_picks.len()
                    ));
                    current.schedule = ScheduleSpec::List(cand_picks);
                }
            }
        }

        // Pass 3: drop crash entries.
        for i in (0..current.crashes.len()).rev() {
            let mut pairs = current.crashes.crashes().to_vec();
            let (victim, at) = pairs.remove(i);
            let cand = ReproCase {
                crashes: CrashPlan::at(pairs.clone()),
                ..current.clone()
            };
            if keeps_class(&cand, &mut replays) {
                log.push(format!("crashes: removed crash of {victim} at event {at}"));
                current.crashes = CrashPlan::at(pairs);
            }
        }

        // Pass 4: drop fault entries.
        for i in (0..current.faults.spurious().len()).rev() {
            let mut spurious = current.faults.spurious().to_vec();
            let at = spurious.remove(i);
            let cand = ReproCase {
                faults: FaultPlan::at(
                    spurious.clone(),
                    current.faults.corruptions().to_vec(),
                    current.faults.value_seed(),
                ),
                ..current.clone()
            };
            if keeps_class(&cand, &mut replays) {
                log.push(format!("faults: removed spurious SC at event {at}"));
                current.faults = cand.faults;
            }
        }
        for i in (0..current.faults.corruptions().len()).rev() {
            let mut corruptions = current.faults.corruptions().to_vec();
            let (at, clear) = corruptions.remove(i);
            let cand = ReproCase {
                faults: FaultPlan::at(
                    current.faults.spurious().to_vec(),
                    corruptions.clone(),
                    current.faults.value_seed(),
                ),
                ..current.clone()
            };
            if keeps_class(&cand, &mut replays) {
                log.push(format!(
                    "faults: removed corruption at event {at} (clear-pset={clear})"
                ));
                current.faults = cand.faults;
            }
        }

        if current.size() >= size_before || replays >= max_replays {
            break;
        }
    }

    let final_size = current.size();
    ShrinkReport {
        case: current,
        log,
        replays,
        initial_size,
        final_size,
    }
}

// ---------------------------------------------------------------------------
// JSON serialization.
//
// Same convention as the llsc-bench artifacts: every scalar is a JSON
// string (seeds in hex, counters in decimal), so the parser below only
// needs strings, arrays, and objects.
// ---------------------------------------------------------------------------

impl ReproCase {
    /// Serializes the case to its JSON artifact form (one line, trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        push_str_field(&mut out, "version", "1");
        out.push(',');
        push_str_field(&mut out, "experiment", &self.experiment);
        out.push(',');
        push_str_field(&mut out, "algorithm", &self.algorithm);
        out.push(',');
        push_str_field(&mut out, "n", &self.n.to_string());
        out.push(',');
        let toss = match self.toss {
            TossSpec::Zero => "zero".to_string(),
            TossSpec::Seeded(seed) => format!("seeded:{seed:#018x}"),
        };
        push_str_field(&mut out, "toss", &toss);
        out.push(',');
        out.push_str("\"schedule\":");
        match &self.schedule {
            ScheduleSpec::RoundRobin => {
                out.push('{');
                push_str_field(&mut out, "kind", "round-robin");
                out.push('}');
            }
            ScheduleSpec::Random { seed } => {
                out.push('{');
                push_str_field(&mut out, "kind", "random");
                out.push(',');
                push_str_field(&mut out, "seed", &format!("{seed:#018x}"));
                out.push('}');
            }
            ScheduleSpec::Hardware => {
                out.push('{');
                push_str_field(&mut out, "kind", "hardware");
                out.push('}');
            }
            ScheduleSpec::List(picks) => {
                out.push('{');
                push_str_field(&mut out, "kind", "list");
                out.push_str(",\"picks\":[");
                for (i, p) in picks.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", p.0);
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"crashes\":[");
        for (i, (pid, at)) in self.crashes.crashes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"pid\":\"{}\",\"at\":\"{at}\"}}", pid.0);
        }
        out.push_str("],\"faults\":{\"spurious\":[");
        for (i, at) in self.faults.spurious().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{at}\"");
        }
        out.push_str("],\"corruptions\":[");
        for (i, (at, clear)) in self.faults.corruptions().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"at\":\"{at}\",\"clear\":\"{clear}\"}}");
        }
        let _ = write!(
            out,
            "],\"value_seed\":\"{:#018x}\"}}",
            self.faults.value_seed()
        );
        out.push(',');
        push_str_field(&mut out, "max_events", &self.max_events.to_string());
        out.push(',');
        push_str_field(&mut out, "max_steps", &self.max_steps.to_string());
        out.push(',');
        push_str_field(&mut out, "outcome", &self.outcome);
        out.push(',');
        push_str_field(&mut out, "class", &self.class);
        if let Some(r) = &self.recovery {
            let _ = write!(
                out,
                ",\"recovery\":{{\"delay\":\"{}\",\"budget\":\"{}\"}}",
                r.delay, r.budget
            );
        }
        if let Some(p) = &self.provenance {
            let _ = write!(
                out,
                ",\"provenance\":{{\"sweep_seed\":\"{:#018x}\",\"trial_index\":\"{}\",\"attempt\":\"{}\"}}",
                p.sweep_seed, p.trial_index, p.attempt
            );
        }
        out.push_str("}\n");
        out
    }

    /// Parses a case back from [`ReproCase::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on malformed JSON, missing required
    /// fields, or out-of-range numbers.
    pub fn from_json(text: &str) -> Result<ReproCase, String> {
        let value = json::parse(text)?;
        let obj = value.object_or("case")?;
        let toss_text = get_str(obj, "toss")?;
        let toss = if toss_text == "zero" {
            TossSpec::Zero
        } else if let Some(hex) = toss_text.strip_prefix("seeded:") {
            TossSpec::Seeded(parse_u64(hex)?)
        } else {
            return Err(format!("unknown toss spec {toss_text:?}"));
        };
        let schedule_obj = get(obj, "schedule")?.object_or("schedule")?;
        let schedule = match get_str(schedule_obj, "kind")?.as_str() {
            "round-robin" => ScheduleSpec::RoundRobin,
            "hardware" => ScheduleSpec::Hardware,
            "random" => ScheduleSpec::Random {
                seed: parse_u64(&get_str(schedule_obj, "seed")?)?,
            },
            "list" => {
                let picks = get(schedule_obj, "picks")?
                    .array_or("picks")?
                    .iter()
                    .map(|v| Ok(ProcessId(parse_usize(&v.str_or("pick")?)?)))
                    .collect::<Result<Vec<_>, String>>()?;
                ScheduleSpec::List(picks)
            }
            other => return Err(format!("unknown schedule kind {other:?}")),
        };
        let crashes = get(obj, "crashes")?
            .array_or("crashes")?
            .iter()
            .map(|v| {
                let c = v.object_or("crash")?;
                Ok((
                    ProcessId(parse_usize(&get_str(c, "pid")?)?),
                    parse_u64(&get_str(c, "at")?)?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let faults_obj = get(obj, "faults")?.object_or("faults")?;
        let spurious = get(faults_obj, "spurious")?
            .array_or("spurious")?
            .iter()
            .map(|v| parse_u64(&v.str_or("spurious entry")?))
            .collect::<Result<Vec<_>, String>>()?;
        let corruptions = get(faults_obj, "corruptions")?
            .array_or("corruptions")?
            .iter()
            .map(|v| {
                let c = v.object_or("corruption")?;
                Ok((
                    parse_u64(&get_str(c, "at")?)?,
                    parse_bool(&get_str(c, "clear")?)?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let value_seed = parse_u64(&get_str(faults_obj, "value_seed")?)?;
        let recovery = match get(obj, "recovery") {
            Ok(v) => {
                let r = v.object_or("recovery")?;
                Some(RecoverySpec {
                    delay: parse_u64(&get_str(r, "delay")?)?,
                    budget: parse_u64(&get_str(r, "budget")?)?,
                })
            }
            Err(_) => None,
        };
        let provenance = match get(obj, "provenance") {
            Ok(v) => {
                let p = v.object_or("provenance")?;
                Some(Provenance {
                    sweep_seed: parse_u64(&get_str(p, "sweep_seed")?)?,
                    trial_index: parse_usize(&get_str(p, "trial_index")?)?,
                    attempt: parse_u64(&get_str(p, "attempt")?)? as u32,
                })
            }
            Err(_) => None,
        };
        Ok(ReproCase {
            experiment: get_str(obj, "experiment")?,
            algorithm: get_str(obj, "algorithm")?,
            n: parse_usize(&get_str(obj, "n")?)?,
            toss,
            schedule,
            crashes: CrashPlan::at(crashes),
            recovery,
            faults: FaultPlan::at(spurious, corruptions, value_seed),
            max_events: parse_u64(&get_str(obj, "max_events")?)?,
            max_steps: parse_u64(&get_str(obj, "max_steps")?)?,
            outcome: get_str(obj, "outcome")?,
            class: get_str(obj, "class")?,
            provenance,
        })
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, "\"{key}\":\"{}\"", json::escape(value));
}

fn get<'a>(obj: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str(obj: &[(String, json::Value)], key: &str) -> Result<String, String> {
    get(obj, key)?.str_or(key)
}

fn parse_u64(text: &str) -> Result<u64, String> {
    let (digits, radix) = match text.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (text, 10),
    };
    u64::from_str_radix(digits, radix).map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_usize(text: &str) -> Result<usize, String> {
    Ok(parse_u64(text)? as usize)
}

fn parse_bool(text: &str) -> Result<bool, String> {
    match text {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("bad bool {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{done, ll, sc};
    use crate::{FnAlgorithm, RegisterId, Value};

    fn contending_alg() -> impl Algorithm {
        FnAlgorithm::new("contending-sc", |pid: ProcessId, _n| {
            let r = RegisterId(0);
            ll(r, move |_| {
                sc(r, Value::from(pid.0 as i64), |ok, _| done(Value::from(ok)))
            })
            .into_program()
        })
    }

    fn sample_case() -> ReproCase {
        ReproCase {
            experiment: "e16".to_string(),
            algorithm: "wakeup-from-fetch&increment[hardened]".to_string(),
            n: 4,
            toss: TossSpec::Seeded(0xDEAD_BEEF),
            schedule: ScheduleSpec::List(vec![ProcessId(0), ProcessId(3), ProcessId(1)]),
            crashes: CrashPlan::at([(ProcessId(2), 7)]),
            recovery: None,
            faults: FaultPlan::at([3, 10], [(5, true), (9, false)], 0x1234),
            max_events: 1000,
            max_steps: 500,
            outcome: "BudgetExhausted { events: 40 }".to_string(),
            class: "stalled".to_string(),
            provenance: Some(Provenance {
                sweep_seed: 42,
                trial_index: 17,
                attempt: 1,
            }),
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let case = sample_case();
        let text = case.to_json();
        assert!(text.ends_with('\n'));
        let back = ReproCase::from_json(&text).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn json_round_trip_of_named_schedules_and_missing_provenance() {
        for schedule in [
            ScheduleSpec::RoundRobin,
            ScheduleSpec::Random { seed: 99 },
            ScheduleSpec::Hardware,
        ] {
            let case = ReproCase {
                schedule: schedule.clone(),
                provenance: None,
                toss: TossSpec::Zero,
                crashes: CrashPlan::none(),
                faults: FaultPlan::none(),
                ..sample_case()
            };
            let back = ReproCase::from_json(&case.to_json()).unwrap();
            assert_eq!(back, case);
        }
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(ReproCase::from_json("").is_err());
        assert!(ReproCase::from_json("{\"n\":\"4\"}").is_err());
        assert!(ReproCase::from_json("[]").is_err());
        assert!(ReproCase::from_json("{\"n\":\"4\"} trailing").is_err());
    }

    #[test]
    fn execute_is_deterministic_and_trace_replays_identically() {
        let alg = contending_alg();
        let case = ReproCase {
            experiment: "test".to_string(),
            algorithm: "contending-sc".to_string(),
            n: 3,
            toss: TossSpec::Zero,
            schedule: ScheduleSpec::RoundRobin,
            crashes: CrashPlan::none(),
            recovery: None,
            faults: FaultPlan::none(),
            max_events: 10_000,
            max_steps: 10_000,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        };
        let first = execute(&case, &alg);
        let second = execute(&case, &alg);
        assert_eq!(first.outcome, second.outcome);
        assert_eq!(first.trace, second.trace);
        assert_eq!(
            first.exec.run().events(),
            second.exec.run().events(),
            "same case, same run"
        );
        assert_eq!(first.outcome, RunOutcome::Completed);
        assert!(!first.trace.is_empty());

        // The explicit trace reproduces the run event-for-event.
        let replay = execute(&case.materialized(first.trace.clone()), &alg);
        assert_eq!(replay.outcome, first.outcome);
        assert_eq!(replay.exec.run().events(), first.exec.run().events());

        // A hardware schedule (whose interleaving is unrecoverable)
        // triages under the round-robin stand-in.
        let hw = ReproCase {
            schedule: ScheduleSpec::Hardware,
            ..case.clone()
        };
        let triaged = execute(&hw, &alg);
        assert_eq!(triaged.outcome, first.outcome);
        assert_eq!(triaged.trace, first.trace);
    }

    #[test]
    fn execute_applies_crash_and_fault_plans() {
        let alg = contending_alg();
        let case = ReproCase {
            experiment: "test".to_string(),
            algorithm: "contending-sc".to_string(),
            n: 3,
            toss: TossSpec::Zero,
            schedule: ScheduleSpec::RoundRobin,
            crashes: CrashPlan::at([(ProcessId(1), 0)]),
            recovery: None,
            faults: FaultPlan::none(),
            max_events: 10_000,
            max_steps: 10_000,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        };
        let replayed = execute(&case, &alg);
        assert_eq!(replayed.outcome, RunOutcome::Crashed { pid: ProcessId(1) });
        assert!(replayed.trace.iter().all(|p| *p != ProcessId(1)));
    }

    #[test]
    fn shrink_reduces_schedule_process_set_and_fault_lists() {
        // Synthetic oracle: the failure reproduces exactly when p1 still
        // takes at least one step — everything else is noise the shrinker
        // should strip.
        let case = ReproCase {
            experiment: "test".to_string(),
            algorithm: "synthetic".to_string(),
            n: 4,
            toss: TossSpec::Zero,
            schedule: ScheduleSpec::List(vec![
                ProcessId(0),
                ProcessId(1),
                ProcessId(2),
                ProcessId(3),
                ProcessId(1),
                ProcessId(0),
                ProcessId(2),
            ]),
            crashes: CrashPlan::at([(ProcessId(3), 5)]),
            recovery: None,
            faults: FaultPlan::at([2, 8], [(4, true)], 77),
            max_events: 100,
            max_steps: 100,
            outcome: String::new(),
            class: "bad".to_string(),
            provenance: None,
        };
        let report = shrink(
            &case,
            |cand| {
                let ScheduleSpec::List(picks) = &cand.schedule else {
                    return None;
                };
                Some(if picks.contains(&ProcessId(1)) {
                    "bad".to_string()
                } else {
                    "good".to_string()
                })
            },
            10_000,
        );
        assert_eq!(
            report.case.schedule,
            ScheduleSpec::List(vec![ProcessId(1)]),
            "minimal schedule is one pick of p1"
        );
        assert!(report.case.crashes.is_empty(), "irrelevant crash removed");
        assert!(report.case.faults.is_empty(), "irrelevant faults removed");
        assert_eq!(report.final_size, 1);
        assert_eq!(report.initial_size, 11);
        assert!(!report.log.is_empty());
        assert!(report.replays > 0);
    }

    #[test]
    fn shrink_keeps_entries_the_failure_needs() {
        // The class depends on the spurious list being non-empty and the
        // crash surviving: shrinking must keep one of each.
        let case = ReproCase {
            experiment: "test".to_string(),
            algorithm: "synthetic".to_string(),
            n: 2,
            toss: TossSpec::Zero,
            schedule: ScheduleSpec::List(vec![ProcessId(0), ProcessId(1), ProcessId(0)]),
            crashes: CrashPlan::at([(ProcessId(0), 1), (ProcessId(1), 2)]),
            recovery: None,
            faults: FaultPlan::at([1, 2, 3], [], 5),
            max_events: 100,
            max_steps: 100,
            outcome: String::new(),
            class: "bad".to_string(),
            provenance: None,
        };
        let report = shrink(
            &case,
            |cand| {
                Some(
                    if !cand.faults.spurious().is_empty() && !cand.crashes.is_empty() {
                        "bad".to_string()
                    } else {
                        "good".to_string()
                    },
                )
            },
            10_000,
        );
        assert_eq!(report.case.faults.spurious().len(), 1);
        assert_eq!(report.case.crashes.len(), 1);
        assert!(report.case.schedule.is_empty(), "schedule was irrelevant");
        assert!(report.final_size < report.initial_size);
    }

    #[test]
    fn json_round_trip_preserves_recovery_spec() {
        let case = ReproCase {
            recovery: Some(RecoverySpec {
                delay: 16,
                budget: 2,
            }),
            ..sample_case()
        };
        let back = ReproCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back, case);
        // A case without the field (any pre-recovery artifact) still
        // parses, as None.
        assert_eq!(sample_case().recovery, None);
        let back = ReproCase::from_json(&sample_case().to_json()).unwrap();
        assert_eq!(back.recovery, None);
    }

    #[test]
    fn execute_recovers_crash_victims_when_the_case_says_so() {
        let alg = contending_alg();
        let base = ReproCase {
            experiment: "test".to_string(),
            algorithm: "contending-sc".to_string(),
            n: 3,
            toss: TossSpec::Zero,
            schedule: ScheduleSpec::RoundRobin,
            crashes: CrashPlan::at([(ProcessId(1), 0)]),
            recovery: None,
            faults: FaultPlan::none(),
            max_events: 10_000,
            max_steps: 10_000,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        };
        // Crash-stop: the victim stays down.
        let stopped = execute(&base, &alg);
        assert_eq!(stopped.outcome, RunOutcome::Crashed { pid: ProcessId(1) });
        // Crash-recovery: the same plan, but the victim comes back and
        // the run completes. Replay of the recovering run is still
        // deterministic.
        let recovering = ReproCase {
            recovery: Some(RecoverySpec {
                delay: 2,
                budget: 1,
            }),
            ..base
        };
        let first = execute(&recovering, &alg);
        assert_eq!(first.outcome, RunOutcome::Completed);
        assert_eq!(first.exec.run().recovery_count(ProcessId(1)), 1);
        let second = execute(&recovering, &alg);
        assert_eq!(first.exec.run().events(), second.exec.run().events());
        assert_eq!(first.trace, second.trace);
    }

    #[test]
    fn shrink_respects_the_replay_budget() {
        let case = ReproCase {
            schedule: ScheduleSpec::List(vec![ProcessId(0); 64]),
            crashes: CrashPlan::none(),
            faults: FaultPlan::none(),
            provenance: None,
            class: "bad".to_string(),
            ..sample_case()
        };
        let report = shrink(&case, |_| Some("bad".to_string()), 3);
        assert!(report.replays <= 3);
    }
}
