//! Remote-memory-reference (RMR) cost models.
//!
//! The paper states its lower bound in shared-access complexity — every
//! shared-memory step costs 1 — but the standard cost measure for
//! crash-prone shared memory (Golab–Ramaraju recoverable mutual
//! exclusion, and Chan–Woelfel's tight RMR bound for it) only charges
//! *remote* memory references. This module implements both classical
//! machine models:
//!
//! * **Cache-coherent (CC)** — every process has a local cache. A *read*
//!   access (`LL`, `validate`, the source of a `move`) is remote only
//!   when the reader's cached copy is missing or was invalidated by
//!   another process's write since the reader last fetched it; the fetch
//!   re-validates the copy, so spinning on an unchanged register is
//!   free after the first read. A *write* access (`SC`, `swap`, the
//!   destination of a `move`) always goes to the interconnect (1 RMR);
//!   a *mutating* write — a successful SC, any swap or move — also
//!   invalidates every other process's cached copy while installing a
//!   valid copy for the writer. A failed SC mutates nothing and
//!   invalidates nothing.
//! * **Distributed shared memory (DSM)** — no caches; each register
//!   permanently lives in one process's memory segment, assigned by
//!   [`dsm_home`] (`home(R) = R mod n`). An access is remote exactly
//!   when the accessing process is not the register's home, regardless
//!   of history. Unlike the CC charge, DSM remoteness is a pure function
//!   of `(process, register, n)`, which is what lets the hardware
//!   backend count DSM RMRs locally per thread.
//!
//! A `move` touches two registers and is charged per register (up to 2
//! RMRs); every other operation touches one. The executor calls
//! [`CcTracker::charge`] / [`dsm_cost`] once per shared step and
//! accumulates the results next to the shared-access counters in
//! [`Run`](crate::Run) / [`OpCounters`](crate::OpCounters).

use crate::{Operation, ProcMask, ProcessId, RegisterId, Response};
use std::collections::HashMap;

/// The home process of `reg` in the DSM model: `home(R) = R mod n`.
///
/// Deterministic and independent of execution history, so both backends
/// (and the cross-check envelope) agree on it by construction. For the
/// degenerate `n = 0` system every register is homed at `p0`.
pub fn dsm_home(reg: RegisterId, n: usize) -> ProcessId {
    ProcessId((reg.0 % n.max(1) as u64) as usize)
}

/// `true` iff `p`'s access to `reg` is remote in the DSM model.
pub fn dsm_remote(p: ProcessId, reg: RegisterId, n: usize) -> bool {
    dsm_home(reg, n) != p
}

/// The DSM-model RMR cost of one shared-memory operation by `p`: the
/// number of registers it touches that are not homed at `p` (0, 1, or —
/// for a `move` between two foreign registers — 2).
pub fn dsm_cost(p: ProcessId, op: &Operation, n: usize) -> u64 {
    match op {
        Operation::Ll(r) | Operation::Validate(r) | Operation::Sc(r, _) | Operation::Swap(r, _) => {
            u64::from(dsm_remote(p, *r, n))
        }
        Operation::Move { src, dst } => {
            u64::from(dsm_remote(p, *src, n)) + u64::from(dsm_remote(p, *dst, n))
        }
    }
}

/// The cache-coherence state behind the CC cost model: for each register,
/// the set of processes whose cached copy is currently valid.
///
/// The executor owns one of these, consults it on every shared step, and
/// clears it on [`reset`](CcTracker::reset) (and on adversarial register
/// corruption, which invalidates every cached copy of the victim —
/// [`invalidate`](CcTracker::invalidate)).
#[derive(Clone, Debug, Default)]
pub struct CcTracker {
    valid: HashMap<RegisterId, ProcMask>,
}

impl CcTracker {
    /// An empty tracker: no process caches anything, so every first
    /// access is remote.
    pub fn new() -> CcTracker {
        CcTracker::default()
    }

    /// Forgets all cache state (every copy invalid), keeping allocations.
    pub fn reset(&mut self) {
        for mask in self.valid.values_mut() {
            mask.clear();
        }
    }

    /// Invalidates every process's cached copy of `reg` — the effect of
    /// an out-of-band write such as the fault adversary's register
    /// corruption.
    pub fn invalidate(&mut self, reg: RegisterId) {
        if let Some(mask) = self.valid.get_mut(&reg) {
            mask.clear();
        }
    }

    /// Drops every cached copy `p` holds — the cold-cache restart of a
    /// process recovering from a crash: its first read of each register
    /// after recovery is remote again.
    pub fn evict(&mut self, p: ProcessId) {
        for mask in self.valid.values_mut() {
            mask.remove(p);
        }
    }

    /// `true` iff `p` currently holds a valid cached copy of `reg`.
    pub fn is_cached(&self, p: ProcessId, reg: RegisterId) -> bool {
        self.valid.get(&reg).is_some_and(|m| m.contains(p))
    }

    /// A read access by `p`: remote (1) iff `p`'s copy is invalid; the
    /// fetch validates it either way.
    fn read(&mut self, p: ProcessId, reg: RegisterId) -> u64 {
        let mask = self.valid.entry(reg).or_default();
        u64::from(mask.insert(p))
    }

    /// A write access by `p`: always remote (1). When the write mutates
    /// the register it invalidates every other cached copy and installs
    /// a valid one for the writer; a non-mutating write (failed SC)
    /// leaves cache state untouched.
    fn write(&mut self, p: ProcessId, reg: RegisterId, mutates: bool) -> u64 {
        if mutates {
            let mask = self.valid.entry(reg).or_default();
            mask.clear();
            mask.insert(p);
        }
        1
    }

    /// Charges one shared-memory step under the CC model, updating the
    /// cache state, and returns its RMR cost. `resp` is the response the
    /// operation produced (a failed SC — `Flagged { ok: false, .. }` —
    /// is a non-mutating write).
    pub fn charge(&mut self, p: ProcessId, op: &Operation, resp: &Response) -> u64 {
        match op {
            Operation::Ll(r) | Operation::Validate(r) => self.read(p, *r),
            Operation::Sc(r, _) => self.write(p, *r, resp.flag() == Some(true)),
            Operation::Swap(r, _) => self.write(p, *r, true),
            Operation::Move { src, dst } => self.read(p, *src) + self.write(p, *dst, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    const R: RegisterId = RegisterId(0);
    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    fn ok_sc() -> Response {
        Response::Flagged {
            ok: true,
            value: Value::Unit,
        }
    }

    fn failed_sc() -> Response {
        Response::Flagged {
            ok: false,
            value: Value::Unit,
        }
    }

    #[test]
    fn dsm_home_is_register_mod_n() {
        assert_eq!(dsm_home(RegisterId(0), 3), ProcessId(0));
        assert_eq!(dsm_home(RegisterId(5), 3), ProcessId(2));
        assert!(!dsm_remote(ProcessId(2), RegisterId(5), 3));
        assert!(dsm_remote(ProcessId(0), RegisterId(5), 3));
        // n = 0 degenerates to everything homed at p0 instead of dividing
        // by zero.
        assert_eq!(dsm_home(RegisterId(7), 0), ProcessId(0));
    }

    #[test]
    fn dsm_cost_charges_per_foreign_register() {
        let n = 4;
        assert_eq!(dsm_cost(P0, &Operation::Ll(RegisterId(0)), n), 0);
        assert_eq!(dsm_cost(P0, &Operation::Ll(RegisterId(1)), n), 1);
        assert_eq!(
            dsm_cost(
                P0,
                &Operation::Move {
                    src: RegisterId(1),
                    dst: RegisterId(2)
                },
                n
            ),
            2
        );
        assert_eq!(
            dsm_cost(
                P1,
                &Operation::Move {
                    src: RegisterId(1),
                    dst: RegisterId(2)
                },
                n
            ),
            1
        );
    }

    #[test]
    fn cc_spinning_read_is_free_after_first_fetch() {
        let mut cc = CcTracker::new();
        assert_eq!(
            cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit)),
            1
        );
        assert_eq!(
            cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit)),
            0
        );
        assert_eq!(cc.charge(P0, &Operation::Validate(R), &failed_sc()), 0);
        assert!(cc.is_cached(P0, R));
    }

    #[test]
    fn cc_mutating_write_invalidates_other_readers() {
        let mut cc = CcTracker::new();
        cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit));
        cc.charge(P1, &Operation::Ll(R), &Response::Value(Value::Unit));
        // p1's successful SC: 1 RMR, and p0's copy is invalidated while
        // p1 keeps a valid one.
        assert_eq!(cc.charge(P1, &Operation::Sc(R, Value::Unit), &ok_sc()), 1);
        assert!(!cc.is_cached(P0, R));
        assert!(cc.is_cached(P1, R));
        assert_eq!(
            cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit)),
            1
        );
    }

    #[test]
    fn cc_failed_sc_costs_but_does_not_invalidate() {
        let mut cc = CcTracker::new();
        cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit));
        assert_eq!(
            cc.charge(P1, &Operation::Sc(R, Value::Unit), &failed_sc()),
            1
        );
        assert!(cc.is_cached(P0, R), "failed SC mutates nothing");
        assert!(!cc.is_cached(P1, R), "a failed SC installs no copy");
    }

    #[test]
    fn cc_corruption_invalidates_everyone() {
        let mut cc = CcTracker::new();
        cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit));
        cc.invalidate(R);
        assert!(!cc.is_cached(P0, R));
        assert_eq!(
            cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit)),
            1
        );
    }

    #[test]
    fn cc_evict_cold_starts_one_process() {
        let mut cc = CcTracker::new();
        cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit));
        cc.charge(P1, &Operation::Ll(R), &Response::Value(Value::Unit));
        cc.evict(P0);
        assert!(!cc.is_cached(P0, R));
        assert!(cc.is_cached(P1, R), "other caches survive the eviction");
    }

    #[test]
    fn cc_reset_forgets_all_state() {
        let mut cc = CcTracker::new();
        cc.charge(P0, &Operation::Ll(R), &Response::Value(Value::Unit));
        cc.reset();
        assert!(!cc.is_cached(P0, R));
    }
}
