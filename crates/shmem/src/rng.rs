//! Deterministic pseudo-random streams for experiments and tests.
//!
//! Everything in this repository is reproducible: toss assignments, move
//! configurations, schedules, and test inputs are all derived from explicit
//! seeds. This module is the single home for the two generators those
//! derivations use:
//!
//! * [`XorShift64`] — the xorshift stream the experiment sweeps have always
//!   used for random move configurations (seeding and shift constants are
//!   stable; regenerated tables stay byte-identical);
//! * [`split_mix`] — a one-shot mixer for deriving independent per-trial
//!   seeds from a `(sweep seed, trial index)` pair, used by the parallel
//!   sweep engine in [`crate::sweep`].

/// A deterministic xorshift-64 stream.
///
/// The seeding (`seed * GOLDEN | 1`) and shift triple (13, 7, 17) are load
/// bearing: experiment tables generated from this stream are committed in
/// `EXPERIMENTS.md` and must not drift.
///
/// # Examples
///
/// ```
/// use llsc_shmem::rng::XorShift64;
/// let mut a = XorShift64::new(7);
/// let mut b = XorShift64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a stream from a seed (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// A value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// A `usize` in `0..bound` (panics if `bound` is 0).
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A signed value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// `true` with probability `num / denom` (of the stream's outputs).
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

/// SplitMix64: a statistically strong one-shot mixer.
///
/// Used to derive independent trial seeds: `split_mix(sweep_seed ^ index)`
/// decorrelates adjacent indices so trials never share toss streams even
/// when sweep seeds are small consecutive integers.
pub fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of trial `index` within a sweep seeded by `sweep_seed`.
///
/// Pure function of its inputs: the same trial gets the same seed no matter
/// which worker thread runs it or in what order, which is what makes the
/// parallel sweep engine's output independent of the thread count.
pub fn trial_seed(sweep_seed: u64, index: usize) -> u64 {
    split_mix(sweep_seed ^ split_mix(index as u64))
}

/// Derives the seed of re-run attempt `attempt` of a trial whose base
/// seed is `seed`. Attempt 0 *is* the original trial (`seed` unchanged);
/// later attempts get independent derived seeds, so a `--retries`
/// re-run is deterministic yet explores a genuinely different toss
/// stream.
pub fn retry_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        seed
    } else {
        split_mix(seed ^ split_mix(0x5E7_12E5 ^ u64::from(attempt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_matches_legacy_stream() {
        // The exact sequence the pre-harness experiment code produced for
        // seed 3 (state = 3 * GOLDEN | 1, shifts 13/7/17). Guards the
        // committed tables in EXPERIMENTS.md against generator drift.
        let mut legacy_state = 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut legacy = move || {
            legacy_state ^= legacy_state << 13;
            legacy_state ^= legacy_state >> 7;
            legacy_state ^= legacy_state << 17;
            legacy_state
        };
        let mut stream = XorShift64::new(3);
        for _ in 0..64 {
            assert_eq!(stream.next_u64(), legacy());
        }
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = XorShift64::new(11);
        for _ in 0..200 {
            assert!(r.below(7) < 7);
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn trial_seeds_are_distinct_across_indices_and_sweeps() {
        let mut seen = std::collections::BTreeSet::new();
        for sweep in 0..8u64 {
            for index in 0..64usize {
                assert!(seen.insert(trial_seed(sweep, index)), "collision");
            }
        }
    }

    #[test]
    fn trial_seed_is_a_pure_function() {
        assert_eq!(trial_seed(42, 17), trial_seed(42, 17));
        assert_ne!(trial_seed(42, 17), trial_seed(42, 18));
        assert_ne!(trial_seed(42, 17), trial_seed(43, 17));
    }

    #[test]
    fn retry_seed_identity_at_attempt_zero_and_distinct_after() {
        assert_eq!(retry_seed(42, 0), 42, "attempt 0 is the original trial");
        let mut seen = std::collections::BTreeSet::new();
        for attempt in 0..16 {
            assert!(seen.insert(retry_seed(42, attempt)), "collision");
            assert_eq!(retry_seed(42, attempt), retry_seed(42, attempt));
        }
        assert_ne!(retry_seed(1, 1), retry_seed(2, 1));
    }

    #[test]
    fn chance_is_deterministic() {
        let mut a = XorShift64::new(9);
        let mut b = XorShift64::new(9);
        for _ in 0..50 {
            assert_eq!(a.chance(1, 3), b.chance(1, 3));
        }
    }
}
