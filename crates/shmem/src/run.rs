//! Runs: event sequences, per-process histories, and the shared-access
//! time complexity accounting.

use crate::{Operation, ProcessId, Response, Value};
use std::fmt;

/// One event of a run: a single step by a single process.
///
/// A run in the paper is an alternating sequence of configurations and
/// events starting from the initial configuration; since our executor is
/// deterministic given the schedule and toss assignment, storing the events
/// (with their outcomes) determines every intermediate configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunEvent {
    /// `p` tossed its `index`-th coin and obtained `outcome`.
    Toss {
        /// The tossing process.
        pid: ProcessId,
        /// 0-based index of this toss in `p`'s toss sequence.
        index: u64,
        /// The outcome, per the run's toss assignment.
        outcome: u64,
    },
    /// `p` performed a shared-memory operation and received a response.
    SharedOp {
        /// The invoking process.
        pid: ProcessId,
        /// The operation performed.
        op: Operation,
        /// The response received.
        resp: Response,
    },
    /// `p` entered a termination state, returning `value`.
    Terminated {
        /// The terminating process.
        pid: ProcessId,
        /// The process's return value.
        value: Value,
    },
}

impl RunEvent {
    /// The process that took this step.
    pub fn pid(&self) -> ProcessId {
        match self {
            RunEvent::Toss { pid, .. }
            | RunEvent::SharedOp { pid, .. }
            | RunEvent::Terminated { pid, .. } => *pid,
        }
    }

    /// `true` iff this is a shared-memory step (the steps counted by the
    /// shared-access time complexity measure).
    pub fn is_shared(&self) -> bool {
        matches!(self, RunEvent::SharedOp { .. })
    }
}

impl fmt::Display for RunEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunEvent::Toss {
                pid,
                index,
                outcome,
            } => {
                write!(f, "{pid}: toss#{index} -> {outcome}")
            }
            RunEvent::SharedOp { pid, op, resp } => write!(f, "{pid}: {op} -> {resp}"),
            RunEvent::Terminated { pid, value } => write!(f, "{pid}: return {value}"),
        }
    }
}

/// One entry of a process's *interaction history*: everything the process
/// has locally observed.
///
/// For a deterministic-given-coins program, the interaction history (plus
/// the program text) determines the process's automaton state. The
/// indistinguishability checker of `llsc-core` therefore compares
/// interaction histories where Lemma 5.2 compares `state(p, r, Σ)`, and
/// toss counts where it compares `numtosses(p, r, Σ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Interaction {
    /// A coin toss and its outcome.
    Toss(u64),
    /// A shared-memory operation and its response.
    Op(Operation, Response),
    /// Termination with a return value.
    Returned(Value),
}

/// A recorded run: the global event sequence plus per-process accounting.
///
/// Implements the complexity bookkeeping of Section 3: `t(p_i, R)` — the
/// number of `p_i`'s shared-memory steps — is [`Run::shared_steps`], and
/// `t(R) = max_i t(p_i, R)` is [`Run::max_shared_steps`].
#[derive(Clone, Debug)]
pub struct Run {
    n: usize,
    details: bool,
    events: Vec<RunEvent>,
    /// Total events recorded, maintained even in lightweight mode (where
    /// `events` itself stays empty).
    event_count: u64,
    histories: Vec<Vec<Interaction>>,
    shared_steps: Vec<u64>,
    tosses: Vec<u64>,
    verdicts: Vec<Option<Value>>,
    /// Crash-stop flags (see [`Run::mark_crashed`]); a crashed process
    /// takes no further events until [`Run::clear_crash`] revives it.
    crashed: Vec<bool>,
    /// Remote memory references per process under the cache-coherent
    /// cost model (see [`Run::cc_rmrs`]).
    cc_rmrs: Vec<u64>,
    /// Remote memory references per process under the
    /// distributed-shared-memory cost model (see [`Run::dsm_rmrs`]).
    dsm_rmrs: Vec<u64>,
    /// Crashes suffered per process (each [`Run::mark_crashed`] call).
    crash_counts: Vec<u64>,
    /// Recoveries per process (each [`Run::clear_crash`] call).
    recovery_counts: Vec<u64>,
}

/// A cheap structured summary of a run: per-process operation and toss
/// counts plus the totals, available in both detailed and lightweight
/// recording modes.
///
/// This is what the large measurement sweeps report instead of full
/// traces: `O(n)` numbers rather than `O(events)` history, but still
/// machine-readable (the bench crate serialises it into the `BENCH_*.json`
/// artifacts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// `t(p, R)` per process: shared-memory operations performed.
    pub ops: Vec<u64>,
    /// `numtosses(p)` per process: coin tosses performed.
    pub tosses: Vec<u64>,
    /// Total events recorded (tosses + shared ops + terminations).
    pub events: u64,
    /// Processes that have terminated.
    pub terminated: usize,
    /// Remote memory references per process, cache-coherent model.
    pub cc_rmrs: Vec<u64>,
    /// Remote memory references per process, DSM model.
    pub dsm_rmrs: Vec<u64>,
    /// Crashes suffered per process.
    pub crashes: Vec<u64>,
    /// Recoveries (crash flags cleared) per process.
    pub recoveries: Vec<u64>,
}

impl OpCounters {
    /// `t(R) = max_p t(p, R)`.
    pub fn max_ops(&self) -> u64 {
        self.ops.iter().copied().max().unwrap_or(0)
    }

    /// Total shared-memory operations across all processes.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Total coin tosses across all processes.
    pub fn total_tosses(&self) -> u64 {
        self.tosses.iter().sum()
    }

    /// Total cache-coherent RMRs across all processes.
    pub fn total_cc_rmrs(&self) -> u64 {
        self.cc_rmrs.iter().sum()
    }

    /// Total DSM RMRs across all processes.
    pub fn total_dsm_rmrs(&self) -> u64 {
        self.dsm_rmrs.iter().sum()
    }

    /// Total crashes suffered across all processes.
    pub fn total_crashes(&self) -> u64 {
        self.crashes.iter().sum()
    }

    /// Total recoveries across all processes.
    pub fn total_recoveries(&self) -> u64 {
        self.recoveries.iter().sum()
    }
}

impl fmt::Display for OpCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} procs ({} terminated): {} ops (max {}), {} tosses, {} events",
            self.ops.len(),
            self.terminated,
            self.total_ops(),
            self.max_ops(),
            self.total_tosses(),
            self.events
        )
    }
}

impl Default for Run {
    /// An empty zero-process run with full detail recording, matching
    /// [`Run::new`]`(0)`.
    fn default() -> Self {
        Run::new(0)
    }
}

impl Run {
    /// Creates an empty run of an `n`-process system with full detail
    /// recording (events and interaction histories).
    pub fn new(n: usize) -> Self {
        Run::with_details(n, true)
    }

    /// Creates an empty *lightweight* run: only step/toss counters and
    /// verdicts are kept; [`Run::events`] and [`Run::history`] stay empty.
    ///
    /// Lightweight runs cut memory from `O(total events x value size)` to
    /// `O(n)`, which is what the large measurement sweeps need. They cannot
    /// feed the wakeup checker or the indistinguishability checker (both
    /// need events/histories).
    pub fn lightweight(n: usize) -> Self {
        Run::with_details(n, false)
    }

    fn with_details(n: usize, details: bool) -> Self {
        Run {
            n,
            details,
            events: Vec::new(),
            event_count: 0,
            histories: vec![Vec::new(); n],
            shared_steps: vec![0; n],
            tosses: vec![0; n],
            verdicts: vec![None; n],
            crashed: vec![false; n],
            cc_rmrs: vec![0; n],
            dsm_rmrs: vec![0; n],
            crash_counts: vec![0; n],
            recovery_counts: vec![0; n],
        }
    }

    /// Whether this run records events and histories.
    pub fn is_detailed(&self) -> bool {
        self.details
    }

    /// The number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Appends an event, updating all per-process accounting.
    ///
    /// # Panics
    ///
    /// Panics if the event's process id is out of range or the process has
    /// already terminated.
    pub fn record(&mut self, ev: RunEvent) {
        let pid = ev.pid();
        self.check_live(pid);
        match &ev {
            RunEvent::Toss { outcome, .. } => {
                self.tosses[pid.0] += 1;
                if self.details {
                    self.histories[pid.0].push(Interaction::Toss(*outcome));
                }
            }
            RunEvent::SharedOp { op, resp, .. } => {
                self.shared_steps[pid.0] += 1;
                if self.details {
                    self.histories[pid.0].push(Interaction::Op(op.clone(), resp.clone()));
                }
            }
            RunEvent::Terminated { value, .. } => {
                self.verdicts[pid.0] = Some(value.clone());
                if self.details {
                    self.histories[pid.0].push(Interaction::Returned(value.clone()));
                }
            }
        }
        self.event_count += 1;
        if self.details {
            self.events.push(ev);
        }
    }

    /// Records a shared-memory step from borrowed parts: equivalent to
    /// [`Run::record`] with [`RunEvent::SharedOp`], but the operation and
    /// response are cloned *only* when this run records details — the
    /// lightweight mode's hot path just bumps two counters.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Run::record`].
    pub fn record_shared(&mut self, pid: ProcessId, op: &Operation, resp: &Response) {
        self.check_live(pid);
        self.shared_steps[pid.0] += 1;
        self.event_count += 1;
        if self.details {
            self.histories[pid.0].push(Interaction::Op(op.clone(), resp.clone()));
            self.events.push(RunEvent::SharedOp {
                pid,
                op: op.clone(),
                resp: resp.clone(),
            });
        }
    }

    /// Clears the run in place for reuse: counters zeroed, events,
    /// histories, verdicts, and crash flags emptied — while every buffer
    /// keeps its allocation. The recording mode and process count are
    /// unchanged; after a reset the run is observationally a freshly
    /// constructed one. This is the reusable-trial-context primitive
    /// behind [`Executor::reset`](crate::Executor::reset).
    pub fn reset(&mut self) {
        self.events.clear();
        self.event_count = 0;
        for h in &mut self.histories {
            h.clear();
        }
        self.shared_steps.fill(0);
        self.tosses.fill(0);
        for v in &mut self.verdicts {
            *v = None;
        }
        self.crashed.fill(false);
        self.cc_rmrs.fill(0);
        self.dsm_rmrs.fill(0);
        self.crash_counts.fill(0);
        self.recovery_counts.fill(0);
    }

    fn check_live(&self, pid: ProcessId) {
        assert!(pid.0 < self.n, "event for out-of-range {pid}");
        assert!(self.verdicts[pid.0].is_none(), "event for terminated {pid}");
        assert!(!self.crashed[pid.0], "event for crashed {pid}");
    }

    /// The global event sequence, in execution order.
    pub fn events(&self) -> &[RunEvent] {
        &self.events
    }

    /// Total events recorded, including in lightweight mode (where
    /// [`Run::events`] stays empty).
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// The cheap structured summary of this run — per-process ops/tosses,
    /// totals, and termination count. Works in both recording modes.
    pub fn counters(&self) -> OpCounters {
        OpCounters {
            ops: self.shared_steps.clone(),
            tosses: self.tosses.clone(),
            events: self.event_count,
            terminated: self.verdicts.iter().filter(|v| v.is_some()).count(),
            cc_rmrs: self.cc_rmrs.clone(),
            dsm_rmrs: self.dsm_rmrs.clone(),
            crashes: self.crash_counts.clone(),
            recoveries: self.recovery_counts.clone(),
        }
    }

    /// Consumes the run and returns its summary, *moving* the per-process
    /// counter vectors out instead of cloning them — the right call when
    /// the run is done (e.g. a lightweight sweep trial that only reports
    /// counters).
    pub fn into_counters(self) -> OpCounters {
        OpCounters {
            terminated: self.verdicts.iter().filter(|v| v.is_some()).count(),
            ops: self.shared_steps,
            tosses: self.tosses,
            events: self.event_count,
            cc_rmrs: self.cc_rmrs,
            dsm_rmrs: self.dsm_rmrs,
            crashes: self.crash_counts,
            recoveries: self.recovery_counts,
        }
    }

    /// `t(p, R)`: the number of shared-memory steps `p` has performed.
    pub fn shared_steps(&self, p: ProcessId) -> u64 {
        self.shared_steps[p.0]
    }

    /// `t(R) = max_p t(p, R)`: the worst per-process shared-access count.
    pub fn max_shared_steps(&self) -> u64 {
        self.shared_steps.iter().copied().max().unwrap_or(0)
    }

    /// `numtosses(p)`: the number of coin tosses `p` has performed.
    pub fn tosses(&self, p: ProcessId) -> u64 {
        self.tosses[p.0]
    }

    /// Charges `p` for the remote memory references one shared step cost:
    /// `cc` under the cache-coherent model, `dsm` under the DSM model. The
    /// executor calls this right after [`Run::record_shared`]; the run
    /// itself only aggregates (remoteness is decided by the executor's
    /// cache/home tracking).
    pub fn record_rmrs(&mut self, pid: ProcessId, cc: u64, dsm: u64) {
        self.cc_rmrs[pid.0] += cc;
        self.dsm_rmrs[pid.0] += dsm;
    }

    /// `p`'s remote memory references under the cache-coherent model.
    pub fn cc_rmrs(&self, p: ProcessId) -> u64 {
        self.cc_rmrs[p.0]
    }

    /// `p`'s remote memory references under the DSM model.
    pub fn dsm_rmrs(&self, p: ProcessId) -> u64 {
        self.dsm_rmrs[p.0]
    }

    /// The number of crashes `p` has suffered.
    pub fn crash_count(&self, p: ProcessId) -> u64 {
        self.crash_counts[p.0]
    }

    /// The number of times `p` has recovered from a crash.
    pub fn recovery_count(&self, p: ProcessId) -> u64 {
        self.recovery_counts[p.0]
    }

    /// The value `p` returned, if `p` has terminated.
    pub fn verdict(&self, p: ProcessId) -> Option<&Value> {
        self.verdicts[p.0].as_ref()
    }

    /// `true` iff every process has terminated (the run is a
    /// *terminating run* in the paper's sense).
    pub fn is_terminating(&self) -> bool {
        self.verdicts.iter().all(Option::is_some)
    }

    /// The processes that have terminated so far, in id order.
    pub fn terminated(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| ProcessId(i))
    }

    /// Marks `p` as crash-stopped: it takes no further events. Crashing is
    /// the limit case of an adversarial scheduler that delays `p` forever
    /// — the recorded prefix stays a legal run of the algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or has already terminated (a
    /// terminated process cannot crash).
    pub fn mark_crashed(&mut self, p: ProcessId) {
        assert!(p.0 < self.n, "crash for out-of-range {p}");
        assert!(self.verdicts[p.0].is_none(), "crash for terminated {p}");
        self.crashed[p.0] = true;
        self.crash_counts[p.0] += 1;
    }

    /// Clears `p`'s crash flag, re-admitting its events: the
    /// crash-*recovery* counterpart of [`Run::mark_crashed`]. The recorded
    /// prefix before the crash stays part of the run — a recoverable
    /// algorithm's recovery section continues from the shared state the
    /// crash left behind, having lost only its local (program) state.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or not currently crashed.
    pub fn clear_crash(&mut self, p: ProcessId) {
        assert!(p.0 < self.n, "recovery for out-of-range {p}");
        assert!(self.crashed[p.0], "recovery for non-crashed {p}");
        self.crashed[p.0] = false;
        self.recovery_counts[p.0] += 1;
    }

    /// `true` iff `p` has been crash-stopped.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed[p.0]
    }

    /// The processes crashed so far, in id order.
    pub fn crashed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashed
            .iter()
            .enumerate()
            .filter(|(_, c)| **c)
            .map(|(i, _)| ProcessId(i))
    }

    /// `p`'s interaction history: everything `p` has observed, in order.
    pub fn history(&self, p: ProcessId) -> &[Interaction] {
        &self.histories[p.0]
    }

    /// `true` iff `p` has taken at least one step (toss, shared op, or
    /// termination).
    pub fn has_stepped(&self, p: ProcessId) -> bool {
        !self.histories[p.0].is_empty()
    }

    /// The index (into [`Run::events`]) of the first event in which each
    /// process takes a step, or `None` for processes that never step.
    /// Used by the wakeup checker's "everyone took a step before anyone
    /// returned 1" condition.
    pub fn first_step_index(&self, p: ProcessId) -> Option<usize> {
        self.events.iter().position(|e| e.pid() == p)
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run of {} processes, {} events:",
            self.n,
            self.events.len()
        )?;
        for ev in &self.events {
            writeln!(f, "  {ev}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegisterId;

    fn op_event(pid: usize) -> RunEvent {
        RunEvent::SharedOp {
            pid: ProcessId(pid),
            op: Operation::Ll(RegisterId(0)),
            resp: Response::Value(Value::Unit),
        }
    }

    #[test]
    fn accounting_tracks_steps_and_tosses() {
        let mut run = Run::new(2);
        run.record(RunEvent::Toss {
            pid: ProcessId(0),
            index: 0,
            outcome: 3,
        });
        run.record(op_event(0));
        run.record(op_event(1));
        run.record(op_event(1));
        assert_eq!(run.shared_steps(ProcessId(0)), 1);
        assert_eq!(run.shared_steps(ProcessId(1)), 2);
        assert_eq!(run.max_shared_steps(), 2);
        assert_eq!(run.tosses(ProcessId(0)), 1);
        assert_eq!(run.tosses(ProcessId(1)), 0);
    }

    #[test]
    fn termination_tracking() {
        let mut run = Run::new(2);
        assert!(!run.is_terminating());
        run.record(RunEvent::Terminated {
            pid: ProcessId(0),
            value: Value::from(1i64),
        });
        assert_eq!(run.verdict(ProcessId(0)), Some(&Value::from(1i64)));
        assert_eq!(run.verdict(ProcessId(1)), None);
        assert!(!run.is_terminating());
        run.record(RunEvent::Terminated {
            pid: ProcessId(1),
            value: Value::from(0i64),
        });
        assert!(run.is_terminating());
        assert_eq!(run.terminated().count(), 2);
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn events_after_termination_panic() {
        let mut run = Run::new(1);
        run.record(RunEvent::Terminated {
            pid: ProcessId(0),
            value: Value::Unit,
        });
        run.record(op_event(0));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_pid_panics() {
        let mut run = Run::new(1);
        run.record(op_event(5));
    }

    #[test]
    fn histories_capture_observations_in_order() {
        let mut run = Run::new(1);
        run.record(RunEvent::Toss {
            pid: ProcessId(0),
            index: 0,
            outcome: 7,
        });
        run.record(op_event(0));
        let h = run.history(ProcessId(0));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], Interaction::Toss(7));
        assert!(matches!(h[1], Interaction::Op(..)));
    }

    #[test]
    fn first_step_index_and_has_stepped() {
        let mut run = Run::new(3);
        run.record(op_event(1));
        run.record(op_event(0));
        assert_eq!(run.first_step_index(ProcessId(1)), Some(0));
        assert_eq!(run.first_step_index(ProcessId(0)), Some(1));
        assert_eq!(run.first_step_index(ProcessId(2)), None);
        assert!(run.has_stepped(ProcessId(0)));
        assert!(!run.has_stepped(ProcessId(2)));
    }

    #[test]
    fn counters_summarise_both_recording_modes() {
        for lightweight in [false, true] {
            let mut run = if lightweight {
                Run::lightweight(2)
            } else {
                Run::new(2)
            };
            run.record(RunEvent::Toss {
                pid: ProcessId(0),
                index: 0,
                outcome: 1,
            });
            run.record(op_event(0));
            run.record(op_event(1));
            run.record(RunEvent::Terminated {
                pid: ProcessId(1),
                value: Value::Unit,
            });
            let c = run.counters();
            assert_eq!(c.ops, vec![1, 1]);
            assert_eq!(c.tosses, vec![1, 0]);
            assert_eq!(c.events, 4);
            assert_eq!(c.terminated, 1);
            assert_eq!(c.max_ops(), 1);
            assert_eq!(c.total_ops(), 2);
            assert_eq!(c.total_tosses(), 1);
            assert_eq!(run.event_count(), 4);
            assert_eq!(run.events().is_empty(), lightweight);
            assert!(c.to_string().contains("2 procs"));
        }
    }

    #[test]
    fn record_shared_matches_record_in_both_modes() {
        for lightweight in [false, true] {
            let make = || {
                if lightweight {
                    Run::lightweight(2)
                } else {
                    Run::new(2)
                }
            };
            let (mut by_event, mut by_parts) = (make(), make());
            let op = Operation::Ll(RegisterId(3));
            let resp = Response::Value(Value::from(9i64));
            by_event.record(RunEvent::SharedOp {
                pid: ProcessId(1),
                op: op.clone(),
                resp: resp.clone(),
            });
            by_parts.record_shared(ProcessId(1), &op, &resp);
            assert_eq!(by_event.events(), by_parts.events());
            assert_eq!(
                by_event.history(ProcessId(1)),
                by_parts.history(ProcessId(1))
            );
            assert_eq!(by_event.counters(), by_parts.counters());
            // The consuming summary agrees with the borrowing one.
            assert_eq!(by_parts.counters(), by_event.into_counters());
        }
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn record_shared_for_terminated_process_panics() {
        let mut run = Run::new(1);
        run.record(RunEvent::Terminated {
            pid: ProcessId(0),
            value: Value::Unit,
        });
        run.record_shared(
            ProcessId(0),
            &Operation::Ll(RegisterId(0)),
            &Response::Value(Value::Unit),
        );
    }

    #[test]
    fn empty_run_max_steps_is_zero() {
        let run = Run::new(0);
        assert_eq!(run.max_shared_steps(), 0);
        assert!(run.is_terminating(), "vacuously terminating");
    }

    #[test]
    fn rmr_accounting_aggregates_per_process() {
        let mut run = Run::lightweight(2);
        run.record(op_event(0));
        run.record_rmrs(ProcessId(0), 1, 1);
        run.record(op_event(0));
        run.record_rmrs(ProcessId(0), 0, 1);
        run.record(op_event(1));
        run.record_rmrs(ProcessId(1), 2, 0);
        assert_eq!(run.cc_rmrs(ProcessId(0)), 1);
        assert_eq!(run.dsm_rmrs(ProcessId(0)), 2);
        assert_eq!(run.cc_rmrs(ProcessId(1)), 2);
        let c = run.counters();
        assert_eq!(c.cc_rmrs, vec![1, 2]);
        assert_eq!(c.dsm_rmrs, vec![2, 0]);
        assert_eq!(c.total_cc_rmrs(), 3);
        assert_eq!(c.total_dsm_rmrs(), 2);
        run.reset();
        assert_eq!(run.counters().total_cc_rmrs(), 0);
    }

    #[test]
    fn crash_and_recovery_counting() {
        let mut run = Run::new(2);
        run.mark_crashed(ProcessId(0));
        assert!(run.is_crashed(ProcessId(0)));
        run.clear_crash(ProcessId(0));
        assert!(!run.is_crashed(ProcessId(0)));
        // Events are legal again after recovery, and a second crash of the
        // same process is counted separately.
        run.record(op_event(0));
        run.mark_crashed(ProcessId(0));
        assert_eq!(run.crash_count(ProcessId(0)), 2);
        assert_eq!(run.recovery_count(ProcessId(0)), 1);
        let c = run.counters();
        assert_eq!(c.total_crashes(), 2);
        assert_eq!(c.total_recoveries(), 1);
        assert_eq!(c.crashes, vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "non-crashed")]
    fn recovery_of_live_process_panics() {
        let mut run = Run::new(1);
        run.clear_crash(ProcessId(0));
    }

    #[test]
    fn display_lists_events() {
        let mut run = Run::new(1);
        run.record(op_event(0));
        let s = run.to_string();
        assert!(s.contains("p0: LL(R0)"));
    }
}
