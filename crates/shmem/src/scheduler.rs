//! Schedulers: functions from the finite run so far to the next process.
//!
//! The paper gives the scheduler the "standard" power: it sees the whole run
//! up to the decision point but cannot influence or predict future coin
//! tosses. Our [`Scheduler`] trait receives the live [`Executor`] (whose
//! [`crate::Run`] *is* the run so far); implementations must only read it.
//!
//! The paper's Figure-2 round adversary is not a `Scheduler` implementation:
//! it drives the executor through the finer-grained phase primitives in
//! `llsc-core`. The schedulers here are the generic ones used by upper-bound
//! measurements and tests.

use crate::{Executor, ProcessId};

/// Chooses which process takes the next step.
pub trait Scheduler {
    /// Returns the process to step next, or `None` to stop the execution.
    ///
    /// Returning a terminated or crashed process is allowed (the executor
    /// skips it), which keeps simple schedulers simple; the built-in
    /// schedulers nevertheless skip non-runnable processes themselves so
    /// that a drive over a partially-crashed system still ends.
    fn next(&mut self, exec: &Executor) -> Option<ProcessId>;
}

/// A mutable reference to a scheduler is itself a scheduler, so drivers
/// that take schedulers by value (e.g. [`crate::CrashScheduler`]) can
/// borrow one and hand it back — the replay machinery uses this to
/// recover a [`RecordingScheduler`]'s trace after a drive.
impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn next(&mut self, exec: &Executor) -> Option<ProcessId> {
        (**self).next(exec)
    }
}

/// Cycles through processes in id order, skipping terminated and crashed
/// ones.
///
/// Under round-robin, contending LL/SC loops interleave maximally — the
/// classic "synchronous" schedule used by the upper-bound measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler starting at `p_0`.
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, exec: &Executor) -> Option<ProcessId> {
        let n = exec.n();
        if n == 0 {
            return None;
        }
        for _ in 0..n {
            let p = ProcessId(self.cursor);
            self.cursor = (self.cursor + 1) % n;
            if exec.is_runnable(p) {
                return Some(p);
            }
        }
        None
    }
}

/// Runs `p_0` to completion, then `p_1`, and so on — the contention-free
/// (solo) schedule. Under it, optimistic LL/SC implementations complete in
/// their best-case step counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialScheduler;

impl SequentialScheduler {
    /// Creates a sequential scheduler.
    pub fn new() -> Self {
        SequentialScheduler
    }
}

impl Scheduler for SequentialScheduler {
    fn next(&mut self, exec: &Executor) -> Option<ProcessId> {
        ProcessId::all(exec.n()).find(|p| exec.is_runnable(*p))
    }
}

/// Follows an explicit list of process ids, then stops.
///
/// Used to pin down exact interleavings in tests and counterexamples.
#[derive(Clone, Debug, Default)]
pub struct ListScheduler {
    order: std::collections::VecDeque<ProcessId>,
}

impl ListScheduler {
    /// Creates a scheduler that yields the given processes in order.
    pub fn new<I: IntoIterator<Item = ProcessId>>(order: I) -> Self {
        ListScheduler {
            order: order.into_iter().collect(),
        }
    }
}

impl Scheduler for ListScheduler {
    fn next(&mut self, _exec: &Executor) -> Option<ProcessId> {
        self.order.pop_front()
    }
}

/// Schedules only the processes in a fixed subset, round-robin, leaving
/// everyone else suspended forever.
///
/// This models the crash/suspension adversaries that the Figure-2
/// scheduler deliberately avoids (it keeps everyone in lockstep): a
/// correct wakeup algorithm must not let anyone return 1 in a run where
/// the excluded processes never step. The wakeup stress harness in
/// `llsc-core` sweeps these schedules.
#[derive(Clone, Debug)]
pub struct PartitionScheduler {
    subset: Vec<ProcessId>,
    cursor: usize,
}

impl PartitionScheduler {
    /// Creates a scheduler that only ever runs the given processes.
    pub fn new<I: IntoIterator<Item = ProcessId>>(subset: I) -> Self {
        PartitionScheduler {
            subset: subset.into_iter().collect(),
            cursor: 0,
        }
    }
}

impl Scheduler for PartitionScheduler {
    fn next(&mut self, exec: &Executor) -> Option<ProcessId> {
        let k = self.subset.len();
        for _ in 0..k {
            let p = self.subset[self.cursor % k.max(1)];
            self.cursor = (self.cursor + 1) % k.max(1);
            if exec.is_runnable(p) {
                return Some(p);
            }
        }
        None
    }
}

/// Wraps any scheduler and records every pick it hands to the executor.
///
/// The recorded trace, replayed through a [`ListScheduler`] against the
/// same executor configuration, reproduces the run event-for-event — this
/// is how a [`crate::repro::ReproCase`] turns a *named* schedule
/// (round-robin, seeded-random) into an *explicit* one that the shrinker
/// can then delta-debug pick by pick.
#[derive(Clone, Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    trace: Vec<ProcessId>,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`, starting with an empty trace.
    pub fn new(inner: S) -> Self {
        RecordingScheduler {
            inner,
            trace: Vec::new(),
        }
    }

    /// The picks recorded so far, in order.
    pub fn trace(&self) -> &[ProcessId] {
        &self.trace
    }

    /// Consumes the wrapper and returns the recorded trace.
    pub fn into_trace(self) -> Vec<ProcessId> {
        self.trace
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn next(&mut self, exec: &Executor) -> Option<ProcessId> {
        let pick = self.inner.next(exec);
        if let Some(p) = pick {
            self.trace.push(p);
        }
        pick
    }
}

/// Picks uniformly among runnable (non-terminated, non-crashed) processes using a seeded SplitMix64
/// stream; fully deterministic per seed.
#[derive(Clone, Copy, Debug)]
pub struct RandomScheduler {
    state: u64,
}

impl RandomScheduler {
    /// Creates a random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            state: seed ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, exec: &Executor) -> Option<ProcessId> {
        let active = exec.active();
        if active.is_empty() {
            return None;
        }
        let i = (self.next_u64() % active.len() as u64) as usize;
        Some(active[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{done, ll};
    use crate::{Algorithm, ExecutorConfig, FnAlgorithm, RegisterId, Value, ZeroTosses};

    fn two_ll_alg() -> impl Algorithm {
        FnAlgorithm::new("two-ll", |_pid, _n| {
            ll(RegisterId(0), |_| {
                ll(RegisterId(1), |_| done(Value::from(0i64)))
            })
            .into_program()
        })
    }

    fn exec(n: usize) -> Executor {
        Executor::new(
            &two_ll_alg(),
            n,
            std::sync::Arc::new(ZeroTosses),
            ExecutorConfig::default(),
        )
    }

    #[test]
    fn round_robin_interleaves() {
        let mut e = exec(2);
        let mut s = RoundRobinScheduler::new();
        e.drive(&mut s, 100).unwrap();
        assert!(e.all_terminated());
        let pids: Vec<_> = e.run().events().iter().map(|ev| ev.pid().0).collect();
        // p0, p1 alternate: op, op, op, op, then terminations interleaved.
        assert_eq!(pids[0], 0);
        assert_eq!(pids[1], 1);
    }

    #[test]
    fn sequential_runs_one_process_at_a_time() {
        let mut e = exec(2);
        let mut s = SequentialScheduler::new();
        e.drive(&mut s, 100).unwrap();
        assert!(e.all_terminated());
        let pids: Vec<_> = e
            .run()
            .events()
            .iter()
            .filter(|ev| ev.is_shared())
            .map(|ev| ev.pid().0)
            .collect();
        assert_eq!(pids, vec![0, 0, 1, 1]);
    }

    #[test]
    fn list_scheduler_follows_exact_order() {
        let mut e = exec(2);
        let mut s = ListScheduler::new([ProcessId(1), ProcessId(0), ProcessId(1), ProcessId(0)]);
        e.drive(&mut s, 100).unwrap();
        assert!(e.all_terminated());
        let pids: Vec<_> = e
            .run()
            .events()
            .iter()
            .filter(|ev| ev.is_shared())
            .map(|ev| ev.pid().0)
            .collect();
        assert_eq!(pids, vec![1, 0, 1, 0]);
    }

    #[test]
    fn list_scheduler_stops_when_exhausted() {
        let mut e = exec(2);
        let mut s = ListScheduler::new([ProcessId(0)]);
        let steps = e.drive(&mut s, 100).unwrap();
        assert_eq!(steps, 1);
        assert!(!e.all_terminated());
    }

    #[test]
    fn partition_scheduler_never_runs_outsiders() {
        let mut e = exec(4);
        let mut s = PartitionScheduler::new([ProcessId(1), ProcessId(3)]);
        e.drive(&mut s, 1000).unwrap();
        for p in [ProcessId(0), ProcessId(2)] {
            assert_eq!(e.run().shared_steps(p), 0, "{p}");
            assert!(!e.is_terminated(p));
        }
        for p in [ProcessId(1), ProcessId(3)] {
            assert!(e.is_terminated(p), "{p}");
        }
    }

    #[test]
    fn partition_scheduler_stops_when_subset_done() {
        let mut e = exec(3);
        let mut s = PartitionScheduler::new([ProcessId(0)]);
        let steps = e.drive(&mut s, 1000).unwrap();
        // p0: two LLs + termination bookkeeping; then the scheduler
        // declines.
        assert!(steps <= 4);
        assert!(e.is_terminated(ProcessId(0)));
        assert!(!e.all_terminated());
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut e = exec(4);
                let mut s = RandomScheduler::new(7);
                e.drive(&mut s, 1000).unwrap();
                e.into_run().events().to_vec()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn random_scheduler_completes_everything() {
        let mut e = exec(4);
        let mut s = RandomScheduler::new(3);
        e.drive(&mut s, 10_000).unwrap();
        assert!(e.all_terminated());
    }

    #[test]
    fn schedulers_skip_crashed_processes() {
        // Round-robin over {p0 crashed, p1, p2}: p1 and p2 finish, the
        // drive ends cleanly, and the run classifies as Crashed.
        let mut e = exec(3);
        e.crash(ProcessId(0));
        let mut s = RoundRobinScheduler::new();
        e.drive(&mut s, 1000).unwrap();
        assert!(e.all_settled() && !e.all_terminated());
        assert_eq!(e.run().shared_steps(ProcessId(0)), 0);
        assert!(e.is_terminated(ProcessId(1)) && e.is_terminated(ProcessId(2)));
        assert_eq!(
            e.run_outcome(),
            crate::RunOutcome::Crashed { pid: ProcessId(0) }
        );

        // Sequential over an all-crashed system declines immediately.
        let mut e = exec(2);
        e.crash(ProcessId(0));
        e.crash(ProcessId(1));
        assert_eq!(e.drive(&mut SequentialScheduler::new(), 10).unwrap(), 0);
    }

    #[test]
    fn recorded_trace_replays_identically_through_a_list_scheduler() {
        let mut e = exec(3);
        let mut s = RecordingScheduler::new(RoundRobinScheduler::new());
        e.drive(&mut s, 100).unwrap();
        assert!(e.all_terminated());
        let events = e.into_run().events().to_vec();
        let trace = s.into_trace();
        assert!(!trace.is_empty());

        let mut replay = exec(3);
        let mut list = ListScheduler::new(trace);
        replay.drive(&mut list, 100).unwrap();
        assert_eq!(replay.into_run().events().to_vec(), events);
    }

    #[test]
    fn round_robin_on_empty_system_stops() {
        let mut e = exec(0);
        let mut s = RoundRobinScheduler::new();
        assert_eq!(e.drive(&mut s, 10).unwrap(), 0);
    }
}
