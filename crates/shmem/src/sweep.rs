//! The deterministic parallel trial engine.
//!
//! Every theorem check in this reproduction is a *sweep* of independent
//! deterministic trials — seeds × sizes × configurations. This module is
//! the one engine all of them run on:
//!
//! * a [`Trial`] is one unit of work, identified by its index in the sweep
//!   and carrying a seed derived purely from `(sweep seed, index)`;
//! * a [`Sweep`] describes how to run a batch of trials: with how many
//!   worker threads and under which sweep seed;
//! * [`Sweep::run`] fans trials out over `std::thread::scope` workers and
//!   merges the results **in trial-index order**.
//!
//! Because each trial's output depends only on its item and its derived
//! seed, and because the merge order is the index order, the produced
//! `Vec` is identical at 1, 4, or 16 threads — tables and JSON artifacts
//! rendered from it are byte-identical regardless of `--threads`.
//!
//! # Examples
//!
//! ```
//! use llsc_shmem::sweep::Sweep;
//! let items: Vec<u64> = (0..100).collect();
//! let serial = Sweep::sequential().run(&items, |t, &x| x * 2 + (t.seed % 2));
//! let parallel = Sweep::with_threads(4).run(&items, |t, &x| x * 2 + (t.seed % 2));
//! assert_eq!(serial, parallel);
//! ```

use crate::rng::trial_seed;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// One unit of work within a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trial {
    /// The trial's position in the sweep (also its merge position).
    pub index: usize,
    /// The trial's private seed, derived from `(sweep seed, index)` by
    /// [`trial_seed`]. Identical across thread counts and run orders.
    pub seed: u64,
}

/// A trial that panicked inside [`Sweep::run_fallible`]: the identifying
/// `(index, seed)` pair plus the stringified panic payload, so a failure
/// row in a JSON artifact is enough to replay the one bad trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// The failing trial's position in the sweep.
    pub index: usize,
    /// The failing trial's derived seed.
    pub seed: u64,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim;
    /// anything else is labelled opaque).
    pub payload: String,
}

impl fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {} (seed {:#018x}) panicked: {}",
            self.index, self.seed, self.payload
        )
    }
}

/// Stringifies a panic payload (the `Box<dyn Any>` from `catch_unwind`).
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A batch of independent deterministic trials: thread count + sweep seed.
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    /// Worker threads to fan trials out over (clamped to at least 1).
    pub threads: usize,
    /// The sweep seed from which every trial seed is derived.
    pub seed: u64,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::sequential()
    }
}

impl Sweep {
    /// A single-threaded sweep with the default seed 0.
    pub fn sequential() -> Self {
        Sweep {
            threads: 1,
            seed: 0,
        }
    }

    /// A sweep over `threads` workers with the default seed 0.
    pub fn with_threads(threads: usize) -> Self {
        Sweep { threads, seed: 0 }
    }

    /// Sets the sweep seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `f` once per item and returns the outputs in item order.
    ///
    /// Work distribution is dynamic (an atomic cursor; busy trials do not
    /// stall the queue), but the output position of each trial is its
    /// index, so the result is independent of scheduling. `f` must be a
    /// pure function of `(trial, item)` for the determinism guarantee to
    /// mean anything; nothing in this engine hands it ambient state.
    ///
    /// # Panics
    ///
    /// Re-raises the first (lowest-index) panic any trial recorded — but
    /// only after every other trial has run to completion, via
    /// [`Sweep::run_fallible`]: one diverging seed no longer takes the
    /// rest of the sweep down with it.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
    {
        self.run_fallible(items, f)
            .into_iter()
            .map(|r| match r {
                Ok(out) => out,
                Err(failure) => panic!("{failure}"),
            })
            .collect()
    }

    /// Runs `f` once per item, isolating panics: the result vector is in
    /// item order, with each panicking trial recorded as a
    /// [`TrialFailure`] (index, seed, stringified payload) while every
    /// other trial still completes and returns `Ok`.
    ///
    /// Each trial closure runs under [`std::panic::catch_unwind`], and
    /// results are merged through per-slot locks with poison recovery, so
    /// neither the unwind nor the merge can cascade one bad seed into the
    /// loss of the whole sweep. As with [`Sweep::run`], `f` must be a pure
    /// function of `(trial, item)`; that purity is also what makes it
    /// unwind-safe to retry or record.
    pub fn run_fallible<I, T, F>(&self, items: &[I], f: F) -> Vec<Result<T, TrialFailure>>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
    {
        let threads = self.threads.max(1).min(items.len().max(1));
        let trial = |index: usize| Trial {
            index,
            seed: trial_seed(self.seed, index),
        };
        let guarded = |t: Trial, item: &I| -> Result<T, TrialFailure> {
            catch_unwind(AssertUnwindSafe(|| f(t, item))).map_err(|payload| TrialFailure {
                index: t.index,
                seed: t.seed,
                payload: payload_string(payload),
            })
        };
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| guarded(trial(i), item))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        // One slot per trial, so a worker's lock scope covers exactly its
        // own slot: the old single-Mutex merge let any panicking trial
        // poison the shared vector and cascade into every other trial's
        // result. Results are computed before locking, and the merge
        // recovers from a poisoned slot regardless.
        let slots: Vec<Mutex<Option<Result<T, TrialFailure>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = guarded(trial(i), item);
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every trial index was claimed exactly once")
            })
            .collect()
    }

    /// The fallible counterpart of [`Sweep::run_indexed`]: runs `f` once
    /// per index in `0..count` with panic isolation.
    pub fn run_indexed_fallible<T, F>(&self, count: usize, f: F) -> Vec<Result<T, TrialFailure>>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.run_fallible(&indices, |t, _| f(t))
    }

    /// Runs `f` once per index in `0..count` (a sweep whose items are just
    /// their indices — seed sweeps, subset enumerations).
    pub fn run_indexed<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.run(&indices, |t, _| f(t))
    }
}

/// Parses a `--threads N` override commonly shared by the experiment
/// binaries; returns 1 (sequential, the deterministic baseline) when the
/// value is absent.
pub fn threads_or_default(explicit: Option<usize>) -> usize {
    explicit.unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = Sweep::with_threads(8).run(&items, |t, &x| {
            assert_eq!(t.index, x);
            x * 3
        });
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let items: Vec<u64> = (0..500).collect();
        let f = |t: Trial, x: &u64| (t.seed ^ x, t.index);
        let base = Sweep::sequential().run(&items, f);
        for threads in [2, 4, 8, 16] {
            assert_eq!(Sweep::with_threads(threads).run(&items, f), base);
        }
    }

    #[test]
    fn seed_changes_trial_seeds_but_not_structure() {
        let items: Vec<u64> = (0..10).collect();
        let a = Sweep::sequential().seeded(1).run(&items, |t, _| t.seed);
        let b = Sweep::sequential().seeded(2).run(&items, |t, _| t.seed);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn empty_item_list_is_fine() {
        let out = Sweep::with_threads(4).run(&Vec::<u64>::new(), |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_indexed_counts_up() {
        let out = Sweep::with_threads(3).run_indexed(7, |t| t.index);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn more_threads_than_items_is_clamped() {
        let items = vec![1u64, 2];
        let out = Sweep::with_threads(64).run(&items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn panicking_trial_leaves_other_results_intact() {
        // Trial 3 panics; with the old single-Mutex merge the poisoned
        // lock cascaded into losing the whole multi-thread sweep. Now the
        // other 16 trials' results all survive, and the failure row
        // carries the trial's identity and payload.
        let items: Vec<usize> = (0..17).collect();
        for threads in [1, 4] {
            let out = Sweep::with_threads(threads).run_fallible(&items, |t, &x| {
                if x == 3 {
                    panic!("deliberate failure in trial {}", t.index);
                }
                x * 10
            });
            assert_eq!(out.len(), 17);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let f = r.as_ref().unwrap_err();
                    assert_eq!(f.index, 3);
                    assert_eq!(f.seed, crate::rng::trial_seed(0, 3));
                    assert!(f.payload.contains("deliberate failure in trial 3"));
                    assert!(f.to_string().contains("trial 3"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn run_fallible_is_thread_invariant() {
        let items: Vec<u64> = (0..40).collect();
        let f = |t: Trial, x: &u64| {
            if x % 7 == 0 {
                panic!("bad seed {:#x}", t.seed);
            }
            t.seed ^ x
        };
        let base = Sweep::sequential().run_fallible(&items, f);
        for threads in [2, 8] {
            assert_eq!(Sweep::with_threads(threads).run_fallible(&items, f), base);
        }
    }

    #[test]
    fn run_repanics_with_the_first_failure_after_completion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Sweep::with_threads(2).run(&items, |_, &x| {
                if x == 5 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        let err = result.unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("re-panic carries the formatted TrialFailure");
        assert!(msg.contains("trial 5"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            9,
            "all other trials completed before the re-panic"
        );
    }

    #[test]
    fn run_indexed_fallible_matches_indexed() {
        let ok = Sweep::with_threads(3).run_indexed_fallible(5, |t| t.index * 2);
        assert_eq!(
            ok.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            vec![0, 2, 4, 6, 8]
        );
    }

    #[test]
    fn threads_or_default_prefers_explicit() {
        assert_eq!(threads_or_default(Some(6)), 6);
        assert_eq!(threads_or_default(Some(0)), 1);
        assert_eq!(threads_or_default(None), 1);
    }
}
