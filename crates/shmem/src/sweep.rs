//! The deterministic parallel trial engine.
//!
//! Every theorem check in this reproduction is a *sweep* of independent
//! deterministic trials — seeds × sizes × configurations. This module is
//! the one engine all of them run on:
//!
//! * a [`Trial`] is one unit of work, identified by its index in the sweep
//!   and carrying a seed derived purely from `(sweep seed, index)`;
//! * a [`Sweep`] describes how to run a batch of trials: with how many
//!   worker threads and under which sweep seed;
//! * [`Sweep::run`] fans trials out over `std::thread::scope` workers and
//!   merges the results **in trial-index order**.
//!
//! Because each trial's output depends only on its item and its derived
//! seed, and because the merge order is the index order, the produced
//! `Vec` is identical at 1, 4, or 16 threads — tables and JSON artifacts
//! rendered from it are byte-identical regardless of `--threads`.
//!
//! # Examples
//!
//! ```
//! use llsc_shmem::sweep::Sweep;
//! let items: Vec<u64> = (0..100).collect();
//! let serial = Sweep::sequential().run(&items, |t, &x| x * 2 + (t.seed % 2));
//! let parallel = Sweep::with_threads(4).run(&items, |t, &x| x * 2 + (t.seed % 2));
//! assert_eq!(serial, parallel);
//! ```

use crate::rng::{retry_seed, trial_seed};
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Process-wide cooperative abort for in-flight sweeps.
///
/// The resumable job runner's chunk watchdog and signal handler both need
/// a way to stop a sweep that is already running: set this flag and every
/// trial that polls [`check_trial_deadline`] (the executor's event guard
/// does, every 512 events) panics into its failure path at the next poll.
/// The flag is process-global — one job per process is the supported
/// shape — and must be cleared (see [`clear_sweep_abort`]) before the
/// next sweep runs.
static SWEEP_ABORT: AtomicBool = AtomicBool::new(false);

/// Requests that every in-flight sweep trial abandon work at its next
/// deadline poll. Async-signal-safe (a single atomic store), so signal
/// handlers may call it directly.
pub fn request_sweep_abort() {
    SWEEP_ABORT.store(true, Ordering::SeqCst);
}

/// Clears a previously requested sweep abort.
pub fn clear_sweep_abort() {
    SWEEP_ABORT.store(false, Ordering::SeqCst);
}

/// Whether a sweep abort is currently requested.
pub fn sweep_abort_requested() -> bool {
    SWEEP_ABORT.load(Ordering::SeqCst)
}

/// One unit of work within a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trial {
    /// The trial's position in the sweep (also its merge position).
    pub index: usize,
    /// The trial's private seed, derived from `(sweep seed, index)` by
    /// [`trial_seed`]. Identical across thread counts and run orders.
    pub seed: u64,
}

/// A trial that panicked inside [`Sweep::run_fallible`]: the identifying
/// `(index, seed)` pair plus the stringified panic payload and the
/// experiment-provided context (its fault/crash plan summary), so a
/// failure row in a JSON artifact is enough to replay the one bad trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// The failing trial's position in the sweep.
    pub index: usize,
    /// The failing trial's *base* derived seed (attempt 0's seed; retry
    /// attempts derive theirs from it via [`retry_seed`]).
    pub seed: u64,
    /// The seed the *final* attempt actually ran under
    /// ([`retry_seed`]`(seed, attempts - 1)`; equal to `seed` when no
    /// retries were configured). Recorded explicitly so a failure row is
    /// actionable — replayable under the right seed — without re-deriving
    /// the retry chain.
    pub derived_seed: u64,
    /// The panic payload of the last attempt, stringified (`&str`/`String`
    /// payloads verbatim; anything else is labelled opaque).
    pub payload: String,
    /// Experiment-provided reproduction context (for example the trial's
    /// fault/crash plan summary); empty when the sweep attached none.
    pub context: String,
    /// Total attempts made (1 = no retries configured or needed).
    pub attempts: u32,
    /// A serialized [`crate::repro::ReproCase`] for the failing run, when
    /// the experiment attached one (the sweep engine itself cannot build
    /// it: only the experiment knows the algorithm and plans).
    pub repro: Option<String>,
}

impl fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {} (seed {:#018x}) panicked: {}",
            self.index, self.seed, self.payload
        )?;
        if !self.context.is_empty() {
            write!(f, " [{}]", self.context)?;
        }
        if self.attempts > 1 {
            write!(
                f,
                " (after {} attempts; final seed {:#018x})",
                self.attempts, self.derived_seed
            )?;
        }
        Ok(())
    }
}

/// Stringifies a panic payload (the `Box<dyn Any>` from `catch_unwind`).
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

thread_local! {
    /// The wall-clock deadline of the trial currently running on this
    /// worker thread, if its sweep configured one.
    static TRIAL_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Polls the ambient per-trial deadline; called from long-running loops
/// inside a trial (the executor's event guard does). Panics — into the
/// trial's [`TrialFailure`] — when the deadline has passed. A no-op on
/// threads with no armed deadline, so code under test or outside sweeps
/// is unaffected.
pub(crate) fn check_trial_deadline(events: u64) {
    if sweep_abort_requested() {
        panic!("sweep abort requested after {events} recorded events");
    }
    let expired = TRIAL_DEADLINE.with(|d| d.get().is_some_and(|t| Instant::now() >= t));
    if expired {
        panic!("trial wall-clock deadline exceeded after {events} recorded events");
    }
}

/// Arms the calling thread's trial deadline for one attempt; the guard
/// restores the previous state on drop, *including* across the unwind of
/// a timed-out (panicking) trial.
struct DeadlineGuard {
    prev: Option<Instant>,
}

fn arm_deadline(timeout: Option<Duration>) -> DeadlineGuard {
    let prev = TRIAL_DEADLINE.with(Cell::get);
    TRIAL_DEADLINE.with(|d| d.set(timeout.map(|t| Instant::now() + t)));
    DeadlineGuard { prev }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        TRIAL_DEADLINE.with(|d| d.set(prev));
    }
}

/// A batch of independent deterministic trials: thread count, sweep seed,
/// retry budget, and optional per-trial wall-clock deadline.
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    /// Worker threads to fan trials out over (clamped to at least 1).
    pub threads: usize,
    /// The sweep seed from which every trial seed is derived.
    pub seed: u64,
    /// Deterministic re-runs granted to a panicking trial before it is
    /// reported as a [`TrialFailure`] (attempt `k` runs under
    /// [`retry_seed`]`(trial.seed, k)`). Default 0: fail on first panic.
    pub retries: u32,
    /// Per-trial wall-clock deadline; `None` (the default) disables the
    /// check. Timeouts convert a hung trial into a structured failure,
    /// at the price of machine-speed dependence *in failure rows only* —
    /// trials that finish in time are untouched, so passing artifacts
    /// stay byte-identical.
    pub trial_timeout: Option<Duration>,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::sequential()
    }
}

impl Sweep {
    /// A single-threaded sweep with the default seed 0.
    pub fn sequential() -> Self {
        Sweep {
            threads: 1,
            seed: 0,
            retries: 0,
            trial_timeout: None,
        }
    }

    /// A sweep over `threads` workers with the default seed 0.
    pub fn with_threads(threads: usize) -> Self {
        Sweep {
            threads,
            ..Sweep::sequential()
        }
    }

    /// Sets the sweep seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the retry budget (builder style); see [`Sweep::retries`].
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the per-trial wall-clock deadline (builder style); see
    /// [`Sweep::trial_timeout`].
    pub fn with_trial_timeout(mut self, timeout: Duration) -> Self {
        self.trial_timeout = Some(timeout);
        self
    }

    /// Runs `f` once per item and returns the outputs in item order.
    ///
    /// Work distribution is dynamic (an atomic cursor; busy trials do not
    /// stall the queue), but the output position of each trial is its
    /// index, so the result is independent of scheduling. `f` must be a
    /// pure function of `(trial, item)` for the determinism guarantee to
    /// mean anything; nothing in this engine hands it ambient state.
    ///
    /// # Panics
    ///
    /// Re-raises the first (lowest-index) panic any trial recorded — but
    /// only after every other trial has run to completion, via
    /// [`Sweep::run_fallible`]: one diverging seed no longer takes the
    /// rest of the sweep down with it.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
    {
        self.run_fallible(items, f)
            .into_iter()
            .map(|r| match r {
                Ok(out) => out,
                Err(failure) => panic!("{failure}"),
            })
            .collect()
    }

    /// Runs `f` once per item, isolating panics: the result vector is in
    /// item order, with each panicking trial recorded as a
    /// [`TrialFailure`] (index, seed, stringified payload) while every
    /// other trial still completes and returns `Ok`.
    ///
    /// Each trial closure runs under [`std::panic::catch_unwind`], and
    /// results are merged through per-slot locks with poison recovery, so
    /// neither the unwind nor the merge can cascade one bad seed into the
    /// loss of the whole sweep. As with [`Sweep::run`], `f` must be a pure
    /// function of `(trial, item)`; that purity is also what makes it
    /// unwind-safe to retry or record.
    ///
    /// A panicking trial is re-run [`Sweep::retries`] times under
    /// deterministic derived seeds before it is reported, and each attempt
    /// runs under the sweep's [`Sweep::trial_timeout`], if one is set.
    pub fn run_fallible<I, T, F>(&self, items: &[I], f: F) -> Vec<Result<T, TrialFailure>>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
    {
        self.run_fallible_with(items, f, |_, _| String::new())
    }

    /// [`Sweep::run_fallible`] with a reproduction-context callback:
    /// `context(trial, item)` is evaluated for each *failing* trial and
    /// recorded in its [`TrialFailure::context`] (experiments put their
    /// fault/crash plan summaries there, making any failure row in a JSON
    /// artifact reproducible on its own).
    pub fn run_fallible_with<I, T, F, C>(
        &self,
        items: &[I],
        f: F,
        context: C,
    ) -> Vec<Result<T, TrialFailure>>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
        C: Fn(Trial, &I) -> String + Sync,
    {
        let threads = self.threads.max(1).min(items.len().max(1));
        let trial = |index: usize| Trial {
            index,
            seed: trial_seed(self.seed, index),
        };
        let guarded = |t: Trial, item: &I| -> Result<T, TrialFailure> {
            let attempts = self.retries.saturating_add(1);
            let mut last_payload = String::new();
            for attempt in 0..attempts {
                let attempt_trial = Trial {
                    index: t.index,
                    seed: retry_seed(t.seed, attempt),
                };
                let _deadline = arm_deadline(self.trial_timeout);
                match catch_unwind(AssertUnwindSafe(|| f(attempt_trial, item))) {
                    Ok(out) => return Ok(out),
                    Err(payload) => last_payload = payload_string(payload),
                }
            }
            Err(TrialFailure {
                index: t.index,
                seed: t.seed,
                derived_seed: retry_seed(t.seed, attempts - 1),
                payload: last_payload,
                context: context(t, item),
                attempts,
                repro: None,
            })
        };
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| guarded(trial(i), item))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        // One slot per trial, so a worker's lock scope covers exactly its
        // own slot: the old single-Mutex merge let any panicking trial
        // poison the shared vector and cascade into every other trial's
        // result. Results are computed before locking, and the merge
        // recovers from a poisoned slot regardless.
        let slots: Vec<Mutex<Option<Result<T, TrialFailure>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = guarded(trial(i), item);
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every trial index was claimed exactly once")
            })
            .collect()
    }

    /// Runs `f` once per item with a **per-worker scratch**: each worker
    /// thread builds one scratch value via `init` and reuses it across
    /// every trial it claims — a reusable executor, memory buffers, or
    /// any other trial context that would otherwise be reallocated per
    /// trial. Results are merged in item order, exactly as in
    /// [`Sweep::run`].
    ///
    /// Trial seeds are derived precisely as in [`Sweep::run`]
    /// (`trial_seed(sweep seed, index)`), so moving a sweep between the
    /// two entry points cannot change any artifact. The determinism
    /// contract extends to the scratch: `f`'s *output* must remain a pure
    /// function of `(trial, item)` — the scratch may carry allocation
    /// capacity between trials, but no trial-visible state (reset it at
    /// the top of `f`, e.g. [`Executor::reset`](crate::Executor::reset)).
    ///
    /// The scratch never crosses threads (each worker builds, uses, and
    /// drops its own), so `S` needs neither `Send` nor `Sync`.
    ///
    /// # Panics
    ///
    /// A panicking trial propagates out of the sweep. There is
    /// deliberately no scratch-aware fallible variant: after an unwind
    /// the scratch state is suspect, so retry-with-reuse would be a
    /// false promise — use [`Sweep::run_fallible`] when isolation
    /// matters more than reuse. The sweep's [`Sweep::trial_timeout`]
    /// *does* apply here, exactly as in the fallible paths: a hung trial
    /// panics (and propagates) rather than hanging the sweep forever.
    pub fn run_with_scratch<I, T, S, Init, F>(&self, items: &[I], init: Init, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, Trial, &I) -> T + Sync,
    {
        self.run_with_scratch_at(0, items, init, f)
    }

    /// [`Sweep::run_with_scratch`] with a **trial-index offset**: item `i`
    /// runs as global trial `offset + i`, with its seed derived from that
    /// global index (`trial_seed(sweep seed, offset + i)`).
    ///
    /// This is the chunking hook the resumable job layer is built on: a
    /// sweep partitioned into contiguous chunks and executed chunk by
    /// chunk — in any order, at any thread count, interleaved with process
    /// restarts — produces exactly the per-trial outputs of one
    /// uninterrupted sweep over the full index space, because nothing but
    /// the global index feeds a trial's identity.
    fn run_with_scratch_at<I, T, S, Init, F>(
        &self,
        offset: usize,
        items: &[I],
        init: Init,
        f: F,
    ) -> Vec<T>
    where
        I: Sync,
        T: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, Trial, &I) -> T + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.max(1).min(items.len());
        let trial = |index: usize| Trial {
            index: offset + index,
            seed: trial_seed(self.seed, offset + index),
        };
        if threads <= 1 {
            let mut scratch = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let _deadline = arm_deadline(self.trial_timeout);
                    f(&mut scratch, trial(i), item)
                })
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let _deadline = arm_deadline(self.trial_timeout);
                        let out = f(&mut scratch, trial(i), item);
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every trial index was claimed exactly once")
            })
            .collect()
    }

    /// [`Sweep::run_indexed`] with a per-worker scratch: runs `f` once per
    /// index in `0..count`, each worker reusing one `init()`-built scratch
    /// across its trials. See [`Sweep::run_with_scratch`] for the
    /// determinism contract.
    pub fn run_indexed_with_scratch<T, S, Init, F>(&self, count: usize, init: Init, f: F) -> Vec<T>
    where
        T: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, Trial) -> T + Sync,
    {
        self.run_indexed_range_with_scratch(0, count, init, f)
    }

    /// Runs `f` once per index in `offset..offset + count`, each worker
    /// reusing one `init()`-built scratch across its trials. Trial
    /// identity (index *and* derived seed) comes from the global index,
    /// so executing a sweep's index space as a sequence of ranges —
    /// across separate calls, thread counts, or process lifetimes —
    /// yields exactly the outputs of [`Sweep::run_indexed_with_scratch`]
    /// over `0..total`, sliced. See [`Sweep::run_with_scratch`] for the
    /// determinism contract.
    pub fn run_indexed_range_with_scratch<T, S, Init, F>(
        &self,
        offset: usize,
        count: usize,
        init: Init,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, Trial) -> T + Sync,
    {
        let indices: Vec<usize> = (offset..offset + count).collect();
        self.run_with_scratch_at(offset, &indices, init, |scratch, t, _| f(scratch, t))
    }

    /// [`Sweep::run_indexed_range_with_scratch`] with **blocked work
    /// claiming**: instead of claiming one index at a time, each worker
    /// claims a contiguous block of `block` indices and runs it in
    /// increasing-index order before claiming the next block.
    ///
    /// Outputs are still merged in index order and trial identity is
    /// still the global index alone, so the results are exactly those of
    /// [`Sweep::run_indexed_range_with_scratch`] — what changes is the
    /// *visit order each scratch observes*: within a block, a worker's
    /// scratch sees strictly consecutive indices. That is the contract
    /// incremental enumerations need (a scratch that carries checkpoints
    /// forward can resume work from index `i` at index `i + 1`, and must
    /// merely tolerate — not fail on — the discontinuity at each block
    /// boundary).
    ///
    /// `block == 0` is treated as 1. Determinism contract and panic
    /// behavior are those of [`Sweep::run_with_scratch`].
    pub fn run_indexed_range_with_scratch_blocked<T, S, Init, F>(
        &self,
        offset: usize,
        count: usize,
        block: usize,
        init: Init,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, Trial) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let block = block.max(1);
        let threads = self.threads.max(1).min(count.div_ceil(block));
        let trial = |index: usize| Trial {
            index: offset + index,
            seed: trial_seed(self.seed, offset + index),
        };
        if threads <= 1 {
            let mut scratch = init();
            return (0..count)
                .map(|i| {
                    let _deadline = arm_deadline(self.trial_timeout);
                    f(&mut scratch, trial(i))
                })
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        let start = b * block;
                        if start >= count {
                            break;
                        }
                        let end = (start + block).min(count);
                        for (i, slot) in slots[start..end].iter().enumerate() {
                            let _deadline = arm_deadline(self.trial_timeout);
                            let out = f(&mut scratch, trial(start + i));
                            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                        }
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every block was claimed exactly once")
            })
            .collect()
    }

    /// The fallible counterpart of [`Sweep::run_indexed`]: runs `f` once
    /// per index in `0..count` with panic isolation.
    pub fn run_indexed_fallible<T, F>(&self, count: usize, f: F) -> Vec<Result<T, TrialFailure>>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.run_fallible(&indices, |t, _| f(t))
    }

    /// Runs `f` once per index in `0..count` (a sweep whose items are just
    /// their indices — seed sweeps, subset enumerations).
    pub fn run_indexed<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.run(&indices, |t, _| f(t))
    }
}

/// Parses a `--threads N` override commonly shared by the experiment
/// binaries; returns 1 (sequential, the deterministic baseline) when the
/// value is absent.
pub fn threads_or_default(explicit: Option<usize>) -> usize {
    explicit.unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that exercise the ambient deadline/abort machinery hold this
    /// lock: the abort flag is process-global, so a concurrently running
    /// deadline test could otherwise observe another test's abort.
    static AMBIENT_STATE: Mutex<()> = Mutex::new(());

    #[test]
    fn results_are_in_index_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = Sweep::with_threads(8).run(&items, |t, &x| {
            assert_eq!(t.index, x);
            x * 3
        });
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let items: Vec<u64> = (0..500).collect();
        let f = |t: Trial, x: &u64| (t.seed ^ x, t.index);
        let base = Sweep::sequential().run(&items, f);
        for threads in [2, 4, 8, 16] {
            assert_eq!(Sweep::with_threads(threads).run(&items, f), base);
        }
    }

    #[test]
    fn seed_changes_trial_seeds_but_not_structure() {
        let items: Vec<u64> = (0..10).collect();
        let a = Sweep::sequential().seeded(1).run(&items, |t, _| t.seed);
        let b = Sweep::sequential().seeded(2).run(&items, |t, _| t.seed);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn empty_item_list_is_fine() {
        let out = Sweep::with_threads(4).run(&Vec::<u64>::new(), |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_indexed_counts_up() {
        let out = Sweep::with_threads(3).run_indexed(7, |t| t.index);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn more_threads_than_items_is_clamped() {
        let items = vec![1u64, 2];
        let out = Sweep::with_threads(64).run(&items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn panicking_trial_leaves_other_results_intact() {
        // Trial 3 panics; with the old single-Mutex merge the poisoned
        // lock cascaded into losing the whole multi-thread sweep. Now the
        // other 16 trials' results all survive, and the failure row
        // carries the trial's identity and payload.
        let items: Vec<usize> = (0..17).collect();
        for threads in [1, 4] {
            let out = Sweep::with_threads(threads).run_fallible(&items, |t, &x| {
                if x == 3 {
                    panic!("deliberate failure in trial {}", t.index);
                }
                x * 10
            });
            assert_eq!(out.len(), 17);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let f = r.as_ref().unwrap_err();
                    assert_eq!(f.index, 3);
                    assert_eq!(f.seed, crate::rng::trial_seed(0, 3));
                    assert!(f.payload.contains("deliberate failure in trial 3"));
                    assert!(f.to_string().contains("trial 3"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn run_fallible_is_thread_invariant() {
        let items: Vec<u64> = (0..40).collect();
        let f = |t: Trial, x: &u64| {
            if x.is_multiple_of(7) {
                panic!("bad seed {:#x}", t.seed);
            }
            t.seed ^ x
        };
        let base = Sweep::sequential().run_fallible(&items, f);
        for threads in [2, 8] {
            assert_eq!(Sweep::with_threads(threads).run_fallible(&items, f), base);
        }
    }

    #[test]
    fn run_repanics_with_the_first_failure_after_completion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Sweep::with_threads(2).run(&items, |_, &x| {
                if x == 5 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        let err = result.unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("re-panic carries the formatted TrialFailure");
        assert!(msg.contains("trial 5"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            9,
            "all other trials completed before the re-panic"
        );
    }

    #[test]
    fn run_indexed_fallible_matches_indexed() {
        let ok = Sweep::with_threads(3).run_indexed_fallible(5, |t| t.index * 2);
        assert_eq!(
            ok.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            vec![0, 2, 4, 6, 8]
        );
    }

    #[test]
    fn scratch_sweep_matches_plain_sweep_at_any_thread_count() {
        // Same seeds, same merge order: a scratch sweep whose closure
        // ignores the scratch is indistinguishable from Sweep::run.
        let items: Vec<u64> = (0..300).collect();
        let base = Sweep::sequential()
            .seeded(9)
            .run(&items, |t, &x| t.seed ^ x);
        for threads in [1, 2, 8] {
            let scratched = Sweep::with_threads(threads).seeded(9).run_with_scratch(
                &items,
                Vec::<u64>::new,
                |scratch, t, &x| {
                    scratch.clear(); // reset: no trial-visible state survives
                    scratch.push(t.seed ^ x);
                    scratch[0]
                },
            );
            assert_eq!(scratched, base, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_built_once_per_worker_and_reused() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = Sweep::with_threads(4).run_with_scratch(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |uses, _, &x| {
                *uses += 1;
                x
            },
        );
        assert_eq!(out, items);
        let built = inits.load(Ordering::Relaxed);
        assert!(
            (1..=4).contains(&built),
            "one scratch per worker, not per trial (built {built})"
        );
    }

    #[test]
    fn indexed_scratch_counts_up_in_order() {
        let out = Sweep::with_threads(3).run_indexed_with_scratch(9, || (), |(), t| t.index * 2);
        assert_eq!(out, (0..9).map(|i| i * 2).collect::<Vec<_>>());
        let empty = Sweep::with_threads(3).run_indexed_with_scratch(0, || (), |(), t| t.index);
        assert!(empty.is_empty());
    }

    #[test]
    fn blocked_scratch_matches_unblocked_and_visits_blocks_in_order() {
        // Output identity with the one-at-a-time variant, at any thread
        // count and block size — including blocks that don't divide the
        // count, block 0 (treated as 1), and oversized blocks.
        let base = Sweep::sequential()
            .seeded(3)
            .run_indexed_range_with_scratch(10, 100, || (), |(), t| (t.index, t.seed));
        for threads in [1, 2, 4, 8] {
            for block in [0, 1, 7, 25, 100, 1000] {
                let blocked = Sweep::with_threads(threads)
                    .seeded(3)
                    .run_indexed_range_with_scratch_blocked(
                        10,
                        100,
                        block,
                        || (),
                        |(), t| (t.index, t.seed),
                    );
                assert_eq!(blocked, base, "threads={threads} block={block}");
            }
        }
        let empty = Sweep::with_threads(4).run_indexed_range_with_scratch_blocked(
            0,
            0,
            8,
            || (),
            |(), t| t.index,
        );
        assert!(empty.is_empty());
    }

    #[test]
    fn blocked_scratch_sees_consecutive_indices_within_a_block() {
        // Each worker's scratch must observe strictly consecutive indices
        // within each block — the contract incremental enumerations rely
        // on. The scratch records the previous index it saw; inside a
        // block the step is always exactly 1.
        let violations = std::sync::Mutex::new(Vec::new());
        Sweep::with_threads(4).run_indexed_range_with_scratch_blocked(
            0,
            64,
            8,
            || None::<usize>,
            |prev, t| {
                if let Some(p) = *prev {
                    if t.index % 8 != 0 && t.index != p + 1 {
                        violations.lock().unwrap().push((p, t.index));
                    }
                }
                *prev = Some(t.index);
            },
        );
        assert_eq!(
            violations.into_inner().unwrap(),
            Vec::<(usize, usize)>::new()
        );
    }

    #[test]
    fn threads_or_default_prefers_explicit() {
        assert_eq!(threads_or_default(Some(6)), 6);
        assert_eq!(threads_or_default(Some(0)), 1);
        assert_eq!(threads_or_default(None), 1);
    }

    #[test]
    fn retries_rerun_under_derived_seeds_until_success() {
        // The trial panics on its base seed but succeeds on any retry
        // seed: with retries it recovers, without it fails — and the
        // failure records the attempt count and the base seed.
        let items = vec![0usize];
        let base = crate::rng::trial_seed(0, 0);
        let f = |t: Trial, _: &usize| {
            if t.seed == base {
                panic!("transient failure on the base seed");
            }
            t.seed
        };
        let with = Sweep::sequential().with_retries(2).run_fallible(&items, f);
        assert_eq!(
            with[0],
            Ok(crate::rng::retry_seed(base, 1)),
            "first retry succeeded deterministically"
        );
        let without = Sweep::sequential().run_fallible(&items, f);
        let failure = without[0].as_ref().unwrap_err();
        assert_eq!(failure.attempts, 1);
        assert_eq!(failure.seed, base, "failure reports the base seed");
        assert_eq!(
            failure.derived_seed, base,
            "with no retries the final seed is the base seed"
        );
        assert!(failure.repro.is_none(), "the engine attaches no repro");
        assert!(
            !failure.to_string().contains("attempts"),
            "1 attempt is implied"
        );
    }

    #[test]
    fn exhausted_retries_report_the_last_payload_and_attempt_count() {
        let out = Sweep::sequential()
            .with_retries(3)
            .run_fallible(&[0usize], |t: Trial, _| -> usize {
                panic!("always bad (seed {:#x})", t.seed)
            });
        let f = out[0].as_ref().unwrap_err();
        assert_eq!(f.attempts, 4, "1 original + 3 retries");
        let last = crate::rng::retry_seed(f.seed, 3);
        assert_eq!(
            f.derived_seed, last,
            "failure records the final attempt's seed explicitly"
        );
        assert!(
            f.payload.contains(&format!("{last:#x}")),
            "payload is from the final attempt: {}",
            f.payload
        );
        assert!(f.to_string().contains("after 4 attempts"), "{f}");
        assert!(
            f.to_string().contains(&format!("final seed {last:#018x}")),
            "{f}"
        );
    }

    #[test]
    fn context_callback_is_recorded_on_failures() {
        let items: Vec<usize> = (0..4).collect();
        let out = Sweep::sequential().run_fallible_with(
            &items,
            |_, &x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            },
            |t, &x| format!("item={x} index={}", t.index),
        );
        let f = out[2].as_ref().unwrap_err();
        assert_eq!(f.context, "item=2 index=2");
        assert!(f.to_string().contains("[item=2 index=2]"), "{f}");
        assert!(out[1].is_ok(), "context evaluation is failure-only");
    }

    #[test]
    fn trial_timeout_converts_a_hung_trial_into_a_failure() {
        let _ambient = AMBIENT_STATE.lock().unwrap_or_else(PoisonError::into_inner);
        use std::time::Duration;
        let items: Vec<u64> = (0..3).collect();
        let out = Sweep::sequential()
            .with_trial_timeout(Duration::from_millis(10))
            .run_fallible(&items, |_, &x| {
                if x == 1 {
                    // A "hung" trial: spin until the ambient deadline
                    // fires (checked the way the executor checks it).
                    let mut events = 0u64;
                    loop {
                        events += 1;
                        if events.is_multiple_of(512) {
                            check_trial_deadline(events);
                        }
                    }
                }
                x
            });
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[2], Ok(2), "later trials run after the timeout");
        let f = out[1].as_ref().unwrap_err();
        assert!(
            f.payload.contains("wall-clock deadline exceeded"),
            "{}",
            f.payload
        );
    }

    #[test]
    fn scratch_sweeps_honor_the_trial_timeout() {
        let _ambient = AMBIENT_STATE.lock().unwrap_or_else(PoisonError::into_inner);
        use std::time::Duration;
        // The PR 4 scratch paths used to skip deadline arming entirely; a
        // hung trial now panics out of the sweep at any thread count.
        for threads in [1, 2] {
            let items: Vec<u64> = (0..2).collect();
            let result = catch_unwind(AssertUnwindSafe(|| {
                Sweep::with_threads(threads)
                    .with_trial_timeout(Duration::from_millis(10))
                    .run_with_scratch(
                        &items,
                        || (),
                        |(), _, &x| -> u64 {
                            if x == 0 {
                                return 0;
                            }
                            let mut events = 0u64;
                            loop {
                                events += 1;
                                if events.is_multiple_of(512) {
                                    check_trial_deadline(events);
                                }
                            }
                        },
                    )
            }));
            let payload = payload_string(result.unwrap_err());
            if threads == 1 {
                assert!(
                    payload.contains("wall-clock deadline exceeded"),
                    "{payload}"
                );
            }
            // (a worker panic surfaces as the scope's own payload, so only
            // the sequential path can assert on the message — the unwrap
            // above already proves the parallel path times out too.)
        }
        check_trial_deadline(0); // the guard restored the disarmed state
    }

    #[test]
    fn range_sweep_is_a_slice_of_the_full_sweep() {
        // The chunking contract: any partition of the index space into
        // contiguous ranges, executed in any order at any thread count,
        // reproduces the full sweep's outputs exactly.
        let full = Sweep::sequential().seeded(42).run_indexed_with_scratch(
            100,
            || (),
            |(), t| (t.index, t.seed),
        );
        for threads in [1, 3] {
            let sweep = Sweep::with_threads(threads).seeded(42);
            let mut chunked = Vec::new();
            for (offset, count) in [(64, 36), (0, 10), (10, 54)] {
                let part = sweep.run_indexed_range_with_scratch(
                    offset,
                    count,
                    || (),
                    |(), t| (t.index, t.seed),
                );
                assert_eq!(part.len(), count);
                chunked.push((offset, part));
            }
            chunked.sort_by_key(|(offset, _)| *offset);
            let merged: Vec<(usize, u64)> =
                chunked.into_iter().flat_map(|(_, part)| part).collect();
            assert_eq!(merged, full, "threads={threads}");
        }
    }

    #[test]
    fn sweep_abort_panics_polling_trials_and_clears() {
        let _ambient = AMBIENT_STATE.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!sweep_abort_requested());
        request_sweep_abort();
        assert!(sweep_abort_requested());
        let result = catch_unwind(AssertUnwindSafe(|| check_trial_deadline(7)));
        let payload = payload_string(result.unwrap_err());
        assert!(payload.contains("sweep abort requested"), "{payload}");
        clear_sweep_abort();
        assert!(!sweep_abort_requested());
        check_trial_deadline(7); // no abort, no deadline: a no-op again
    }

    #[test]
    fn deadline_is_cleared_after_each_trial_even_across_unwind() {
        let _ambient = AMBIENT_STATE.lock().unwrap_or_else(PoisonError::into_inner);
        use std::time::Duration;
        // A timed sweep whose trial panics must not leave a stale
        // deadline armed on the worker thread.
        let _ = Sweep::sequential()
            .with_trial_timeout(Duration::from_millis(1))
            .run_fallible(&[0usize], |_, _| -> usize { panic!("bad") });
        std::thread::sleep(Duration::from_millis(2));
        check_trial_deadline(0); // must not panic: no deadline armed here
    }
}
