//! The deterministic parallel trial engine.
//!
//! Every theorem check in this reproduction is a *sweep* of independent
//! deterministic trials — seeds × sizes × configurations. This module is
//! the one engine all of them run on:
//!
//! * a [`Trial`] is one unit of work, identified by its index in the sweep
//!   and carrying a seed derived purely from `(sweep seed, index)`;
//! * a [`Sweep`] describes how to run a batch of trials: with how many
//!   worker threads and under which sweep seed;
//! * [`Sweep::run`] fans trials out over `std::thread::scope` workers and
//!   merges the results **in trial-index order**.
//!
//! Because each trial's output depends only on its item and its derived
//! seed, and because the merge order is the index order, the produced
//! `Vec` is identical at 1, 4, or 16 threads — tables and JSON artifacts
//! rendered from it are byte-identical regardless of `--threads`.
//!
//! # Examples
//!
//! ```
//! use llsc_shmem::sweep::Sweep;
//! let items: Vec<u64> = (0..100).collect();
//! let serial = Sweep::sequential().run(&items, |t, &x| x * 2 + (t.seed % 2));
//! let parallel = Sweep::with_threads(4).run(&items, |t, &x| x * 2 + (t.seed % 2));
//! assert_eq!(serial, parallel);
//! ```

use crate::rng::trial_seed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of work within a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trial {
    /// The trial's position in the sweep (also its merge position).
    pub index: usize,
    /// The trial's private seed, derived from `(sweep seed, index)` by
    /// [`trial_seed`]. Identical across thread counts and run orders.
    pub seed: u64,
}

/// A batch of independent deterministic trials: thread count + sweep seed.
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    /// Worker threads to fan trials out over (clamped to at least 1).
    pub threads: usize,
    /// The sweep seed from which every trial seed is derived.
    pub seed: u64,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::sequential()
    }
}

impl Sweep {
    /// A single-threaded sweep with the default seed 0.
    pub fn sequential() -> Self {
        Sweep {
            threads: 1,
            seed: 0,
        }
    }

    /// A sweep over `threads` workers with the default seed 0.
    pub fn with_threads(threads: usize) -> Self {
        Sweep { threads, seed: 0 }
    }

    /// Sets the sweep seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `f` once per item and returns the outputs in item order.
    ///
    /// Work distribution is dynamic (an atomic cursor; busy trials do not
    /// stall the queue), but the output position of each trial is its
    /// index, so the result is independent of scheduling. `f` must be a
    /// pure function of `(trial, item)` for the determinism guarantee to
    /// mean anything; nothing in this engine hands it ambient state.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by any trial (worker panics are
    /// joined by `std::thread::scope`).
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(Trial, &I) -> T + Sync,
    {
        let threads = self.threads.max(1).min(items.len().max(1));
        let trial = |index: usize| Trial {
            index,
            seed: trial_seed(self.seed, index),
        };
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(trial(i), item))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new(items.iter().map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = f(trial(i), item);
                    slots.lock().unwrap()[i] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every trial index was claimed exactly once"))
            .collect()
    }

    /// Runs `f` once per index in `0..count` (a sweep whose items are just
    /// their indices — seed sweeps, subset enumerations).
    pub fn run_indexed<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.run(&indices, |t, _| f(t))
    }
}

/// Parses a `--threads N` override commonly shared by the experiment
/// binaries; returns 1 (sequential, the deterministic baseline) when the
/// value is absent.
pub fn threads_or_default(explicit: Option<usize>) -> usize {
    explicit.unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = Sweep::with_threads(8).run(&items, |t, &x| {
            assert_eq!(t.index, x);
            x * 3
        });
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let items: Vec<u64> = (0..500).collect();
        let f = |t: Trial, x: &u64| (t.seed ^ x, t.index);
        let base = Sweep::sequential().run(&items, f);
        for threads in [2, 4, 8, 16] {
            assert_eq!(Sweep::with_threads(threads).run(&items, f), base);
        }
    }

    #[test]
    fn seed_changes_trial_seeds_but_not_structure() {
        let items: Vec<u64> = (0..10).collect();
        let a = Sweep::sequential().seeded(1).run(&items, |t, _| t.seed);
        let b = Sweep::sequential().seeded(2).run(&items, |t, _| t.seed);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn empty_item_list_is_fine() {
        let out = Sweep::with_threads(4).run(&Vec::<u64>::new(), |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_indexed_counts_up() {
        let out = Sweep::with_threads(3).run_indexed(7, |t| t.index);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn more_threads_than_items_is_clamped() {
        let items = vec![1u64, 2];
        let out = Sweep::with_threads(64).run(&items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn threads_or_default_prefers_explicit() {
        assert_eq!(threads_or_default(Some(6)), 6);
        assert_eq!(threads_or_default(Some(0)), 1);
        assert_eq!(threads_or_default(None), 1);
    }
}
