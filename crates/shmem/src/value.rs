//! Register values of unbounded size.
//!
//! The paper's shared memory consists of registers "each of an unbounded
//! size". [`Value`] models such unbounded words as a small recursive term
//! language: signed integers of arbitrary practical width, booleans, process
//! and register names, and tuples/sequences of values. This is expressive
//! enough to hold anything the paper's constructions store in a register —
//! counters, process sets, announced operations, whole object states, and
//! linked structures encoded by register names.
//!
//! # Representation: inline scalars, shared heavy nodes
//!
//! Small values (`Unit`, `Bool`, `Int`, `Pid`, `Reg`) are stored inline in
//! the enum word. The two unbounded variants — [`Value::Bits`] and
//! [`Value::Tuple`] — store their payload behind an [`Arc`] slab, so a
//! `Value` is a *handle*: cloning one is a reference-count bump, never a
//! deep copy. The simulator clones register contents constantly (into run
//! histories, round snapshots, operation responses, and checkpoint
//! serializers), and with handle semantics every one of those clones is
//! O(1) regardless of how wide the register word is. The payloads are
//! immutable once built — "mutation" (e.g. [`Value::with_bit`]) builds a
//! fresh node — which is exactly what makes the sharing sound across the
//! sweep worker threads that hold the same `(All, A)`-run.

use crate::{ProcessId, RegisterId};
use std::fmt;
use std::sync::Arc;

/// The contents of a shared register: an unbounded, structured word.
///
/// `Value` is a deep-comparable, hashable term with O(1) clones (see the
/// module docs). Registers initially hold [`Value::Unit`] unless the
/// experiment configures otherwise.
///
/// # Examples
///
/// ```
/// use llsc_shmem::Value;
/// let v = Value::tuple([Value::from(1i64), Value::from(true)]);
/// assert_eq!(v.index(0).and_then(Value::as_int), Some(1));
/// assert_eq!(v.index(1).and_then(Value::as_bool), Some(true));
/// assert_eq!(v.to_string(), "(1, true)");
/// ```
// The manual `PartialEq` below is structural-equality-consistent with the
// derived `Hash` (its pointer check only short-circuits structurally equal
// slabs), so the derive is sound.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Debug, Default, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The distinguished initial value of every register ("⊥").
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer. 128 bits covers every quantity the paper's
    /// algorithms store numerically; quantities wider than that (such as the
    /// `k`-bit words of fetch&and objects with `k ≥ n`) are stored as
    /// [`Value::Bits`].
    Int(i128),
    /// A process name.
    Pid(ProcessId),
    /// A register name (registers can point at registers, enabling linked
    /// structures and the `move` operation's indirection patterns).
    Reg(RegisterId),
    /// An arbitrary-width bit string, least-significant word first.
    /// Width is `words.len() * 64` bits. The word slab is shared: clones
    /// alias it.
    Bits(Arc<[u64]>),
    /// An ordered sequence of values. The element slab is shared: clones
    /// alias it.
    Tuple(Arc<[Value]>),
}

/// Structural equality with a handle fast path: two clones of the same
/// `Bits`/`Tuple` slab compare equal by pointer without walking the
/// payload. Consistent with the derived `Ord`/`Hash` — the pointer check
/// only short-circuits cases that are structurally equal anyway.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Pid(a), Value::Pid(b)) => a == b,
            (Value::Reg(a), Value::Reg(b)) => a == b,
            (Value::Bits(a), Value::Bits(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Tuple(a), Value::Tuple(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Value {
    /// Builds a tuple value from an iterator of elements.
    ///
    /// ```
    /// use llsc_shmem::Value;
    /// let t = Value::tuple([Value::Unit, Value::from(2i64)]);
    /// assert_eq!(t.len(), Some(2));
    /// ```
    pub fn tuple<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Tuple(items.into_iter().collect())
    }

    /// Builds a bit-string value from its little-endian words.
    pub fn bits(words: impl Into<Arc<[u64]>>) -> Value {
        Value::Bits(words.into())
    }

    /// Builds an empty tuple (distinct from [`Value::Unit`]).
    pub fn empty_tuple() -> Value {
        Value::Tuple(Arc::from([]))
    }

    /// Builds a bit string of `words * 64` bits, all zero.
    pub fn zero_bits(words: usize) -> Value {
        Value::bits(vec![0; words])
    }

    /// Builds a bit string of `words * 64` bits, all one.
    pub fn ones_bits(words: usize) -> Value {
        Value::bits(vec![u64::MAX; words])
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the process name, if this is a [`Value::Pid`].
    pub fn as_pid(&self) -> Option<ProcessId> {
        match self {
            Value::Pid(p) => Some(*p),
            _ => None,
        }
    }

    /// Returns the register name, if this is a [`Value::Reg`].
    pub fn as_reg(&self) -> Option<RegisterId> {
        match self {
            Value::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the elements, if this is a [`Value::Tuple`].
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(vs) => Some(vs),
            _ => None,
        }
    }

    /// Returns the words of the bit string, if this is a [`Value::Bits`].
    pub fn as_bits(&self) -> Option<&[u64]> {
        match self {
            Value::Bits(ws) => Some(ws),
            _ => None,
        }
    }

    /// Returns element `i` of a tuple, or `None` for non-tuples or
    /// out-of-range indices.
    pub fn index(&self, i: usize) -> Option<&Value> {
        self.as_tuple().and_then(|vs| vs.get(i))
    }

    /// The number of elements of a tuple, or `None` for non-tuples.
    pub fn len(&self) -> Option<usize> {
        self.as_tuple().map(<[Value]>::len)
    }

    /// Whether this is a tuple with no elements. Non-tuples are not "empty".
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// `true` iff this is [`Value::Unit`].
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// Reads bit `i` (0-based, little-endian) of a [`Value::Bits`] string.
    ///
    /// Bits beyond the stored width read as zero; non-bit-strings read as
    /// `None`.
    pub fn bit(&self, i: usize) -> Option<bool> {
        let ws = self.as_bits()?;
        let (word, off) = (i / 64, i % 64);
        Some(ws.get(word).is_some_and(|w| (w >> off) & 1 == 1))
    }

    /// Returns a copy of this bit string with bit `i` set to `b`.
    ///
    /// Returns `None` for non-bit-strings or out-of-width indices.
    pub fn with_bit(&self, i: usize, b: bool) -> Option<Value> {
        let mut ws = self.as_bits()?.to_vec();
        let (word, off) = (i / 64, i % 64);
        let w = ws.get_mut(word)?;
        if b {
            *w |= 1 << off;
        } else {
            *w &= !(1 << off);
        }
        Some(Value::bits(ws))
    }

    /// A 64-bit structural checksum of the value term (FNV-1a over a
    /// variant-tagged traversal). Hardened algorithms store a value's
    /// fingerprint next to the value itself so a transiently corrupted
    /// register is *detectable*: any single-field mutation changes the
    /// fingerprint, and forging a matching one would require corrupting
    /// value and checksum consistently.
    ///
    /// ```
    /// use llsc_shmem::Value;
    /// let v = Value::tuple([Value::from(1i64), Value::from(true)]);
    /// assert_eq!(v.fingerprint(), v.clone().fingerprint());
    /// assert_ne!(v.fingerprint(), Value::Unit.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x0000_0100_0000_01B3)
        }
        fn go(v: &Value, h: u64) -> u64 {
            match v {
                Value::Unit => mix(h, 1),
                Value::Bool(b) => mix(mix(h, 2), u64::from(*b)),
                Value::Int(i) => mix(mix(mix(h, 3), *i as u64), (*i >> 64) as u64),
                Value::Pid(p) => mix(mix(h, 4), p.0 as u64),
                Value::Reg(r) => mix(mix(h, 5), r.0),
                Value::Bits(ws) => ws
                    .iter()
                    .fold(mix(mix(h, 6), ws.len() as u64), |h, w| mix(h, *w)),
                Value::Tuple(vs) => vs
                    .iter()
                    .fold(mix(mix(h, 7), vs.len() as u64), |h, v| go(v, h)),
            }
        }
        go(self, 0xcbf2_9ce4_8422_2325)
    }

    /// A structural size measure: the number of nodes in the value term.
    /// Useful for asserting that experiments do not accidentally blow up
    /// register contents.
    pub fn size(&self) -> usize {
        match self {
            Value::Tuple(vs) => 1 + vs.iter().map(Value::size).sum::<usize>(),
            Value::Bits(ws) => 1 + ws.len(),
            _ => 1,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i128::from(i))
    }
}

impl From<i128> for Value {
    fn from(i: i128) -> Self {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i128::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i128)
    }
}

impl From<ProcessId> for Value {
    fn from(p: ProcessId) -> Self {
        Value::Pid(p)
    }
}

impl From<RegisterId> for Value {
    fn from(r: RegisterId) -> Self {
        Value::Reg(r)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::tuple(iter)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Pid(p) => write!(f, "{p}"),
            Value::Reg(r) => write!(f, "{r}"),
            Value::Bits(ws) => {
                write!(f, "0x")?;
                for w in ws.iter().rev() {
                    write!(f, "{w:016x}")?;
                }
                Ok(())
            }
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unit() {
        assert_eq!(Value::default(), Value::Unit);
        assert!(Value::default().is_unit());
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(5i64).as_int(), Some(5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(ProcessId(2)).as_pid(), Some(ProcessId(2)));
        assert_eq!(Value::from(RegisterId(9)).as_reg(), Some(RegisterId(9)));
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::from(1i64).as_bool(), None);
    }

    #[test]
    fn tuple_indexing() {
        let t = Value::tuple([Value::from(1i64), Value::from(2i64)]);
        assert_eq!(t.index(0), Some(&Value::from(1i64)));
        assert_eq!(t.index(2), None);
        assert_eq!(t.len(), Some(2));
        assert!(!t.is_empty());
        assert!(Value::empty_tuple().is_empty());
        assert_eq!(Value::Unit.index(0), None);
    }

    #[test]
    fn bit_access_round_trips() {
        let z = Value::zero_bits(2);
        assert_eq!(z.bit(0), Some(false));
        assert_eq!(z.bit(127), Some(false));
        // Out-of-width bits read as zero.
        assert_eq!(z.bit(500), Some(false));
        let v = z.with_bit(70, true).unwrap();
        assert_eq!(v.bit(70), Some(true));
        assert_eq!(v.bit(69), Some(false));
        let back = v.with_bit(70, false).unwrap();
        assert_eq!(back, Value::zero_bits(2));
        // Setting out of width fails rather than silently growing.
        assert_eq!(z.with_bit(128, true), None);
    }

    #[test]
    fn ones_bits_has_all_bits_set() {
        let v = Value::ones_bits(1);
        for i in 0..64 {
            assert_eq!(v.bit(i), Some(true));
        }
    }

    #[test]
    fn bit_on_non_bits_is_none() {
        assert_eq!(Value::from(3i64).bit(0), None);
        assert_eq!(Value::Unit.with_bit(0, true), None);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Value::Unit.size(), 1);
        let t = Value::tuple([Value::Unit, Value::tuple([Value::from(1i64)])]);
        assert_eq!(t.size(), 4);
        assert_eq!(Value::zero_bits(3).size(), 4);
    }

    #[test]
    fn clones_share_their_slab() {
        let t = Value::tuple([Value::from(1i64), Value::zero_bits(4)]);
        let u = t.clone();
        match (&t, &u) {
            (Value::Tuple(a), Value::Tuple(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
        // Sharing is invisible to structural operations.
        assert_eq!(t, u);
        assert_eq!(t.fingerprint(), u.fingerprint());
        // Equality also holds for structurally equal, separately built terms.
        let rebuilt = Value::tuple([Value::from(1i64), Value::zero_bits(4)]);
        assert_eq!(t, rebuilt);
    }

    #[test]
    fn display_is_nonempty_and_structured() {
        assert_eq!(Value::Unit.to_string(), "⊥");
        assert_eq!(
            Value::tuple([Value::from(1i64), Value::Bool(false)]).to_string(),
            "(1, false)"
        );
        assert_eq!(Value::bits(vec![0xff]).to_string(), "0x00000000000000ff");
    }

    #[test]
    fn fingerprint_separates_structure() {
        // Distinct values that a naive (untagged, unlengthed) hash would
        // conflate must fingerprint differently.
        let distinct = [
            Value::Unit,
            Value::Bool(false),
            Value::from(0i64),
            Value::from(1i64),
            Value::Pid(ProcessId(0)),
            Value::Reg(RegisterId(0)),
            Value::zero_bits(1),
            Value::zero_bits(2),
            Value::empty_tuple(),
            Value::tuple([Value::Unit]),
            Value::tuple([Value::Unit, Value::Unit]),
            Value::tuple([Value::from(1i64), Value::from(2i64)]),
            Value::tuple([Value::from(2i64), Value::from(1i64)]),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for v in &distinct {
            assert!(seen.insert(v.fingerprint()), "collision at {v}");
            assert_eq!(v.fingerprint(), v.fingerprint(), "stable for {v}");
        }
    }

    #[test]
    fn from_iterator_builds_tuple() {
        let t: Value = (0..3).map(|i| Value::from(i as i64)).collect();
        assert_eq!(t.len(), Some(3));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vs = [
            Value::tuple([Value::from(1i64)]),
            Value::Unit,
            Value::from(false),
            Value::from(-3i64),
        ];
        vs.sort();
        // Unit sorts first per variant order.
        assert_eq!(vs[0], Value::Unit);
    }
}
