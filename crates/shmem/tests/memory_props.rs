//! Property-based validation of the shared-memory semantics against an
//! independent oracle.
//!
//! The oracle re-implements the Section-3 register semantics from the
//! paper's text, as directly as possible (one `match` per operation over a
//! `(value, pset)` pair), with none of the structure of the production
//! `SharedMemory`. Random operation sequences must behave identically on
//! both.
//!
//! Inputs are drawn from the repository's deterministic [`XorShift64`]
//! stream (seeded per case), so every run exercises the same histories and
//! failures reproduce from the printed seed alone.

use llsc_shmem::rng::XorShift64;
use llsc_shmem::{Operation, ProcessId, RegisterId, Response, SharedMemory, Value};
use std::collections::{BTreeMap, BTreeSet};

const CASES: u64 = 256;

/// The oracle: a literal transcription of the paper's operation semantics.
#[derive(Default)]
struct Oracle {
    regs: BTreeMap<RegisterId, (Value, BTreeSet<ProcessId>)>,
}

impl Oracle {
    fn reg(&mut self, r: RegisterId) -> &mut (Value, BTreeSet<ProcessId>) {
        self.regs.entry(r).or_default()
    }

    fn apply(&mut self, p: ProcessId, op: &Operation) -> Response {
        match op {
            Operation::Ll(r) => {
                let (v, pset) = self.reg(*r);
                pset.insert(p);
                Response::Value(v.clone())
            }
            Operation::Validate(r) => {
                let (v, pset) = self.reg(*r);
                Response::Flagged {
                    ok: pset.contains(&p),
                    value: v.clone(),
                }
            }
            Operation::Sc(r, new) => {
                let (v, pset) = self.reg(*r);
                if pset.contains(&p) {
                    let prev = v.clone();
                    *v = new.clone();
                    pset.clear();
                    Response::Flagged {
                        ok: true,
                        value: prev,
                    }
                } else {
                    Response::Flagged {
                        ok: false,
                        value: v.clone(),
                    }
                }
            }
            Operation::Swap(r, new) => {
                let (v, pset) = self.reg(*r);
                let prev = v.clone();
                *v = new.clone();
                pset.clear();
                Response::Value(prev)
            }
            Operation::Move { src, dst } => {
                let moved = self.reg(*src).0.clone();
                let (v, pset) = self.reg(*dst);
                *v = moved;
                pset.clear();
                Response::Ack
            }
        }
    }
}

/// Draws a random `(process, operation)` pair: uniform over the five
/// operation kinds, registers in `0..4`, processes in `0..3`, written
/// values in `-4..4`.
fn random_op(rng: &mut XorShift64) -> (usize, Operation) {
    let p = rng.index(3);
    let r = RegisterId(rng.below(4));
    let op = match rng.index(5) {
        0 => Operation::Ll(r),
        1 => Operation::Validate(r),
        2 => Operation::Sc(r, Value::from(rng.range_i64(-4, 4))),
        3 => Operation::Swap(r, Value::from(rng.range_i64(-4, 4))),
        _ => Operation::Move {
            src: r,
            dst: RegisterId(rng.below(4)),
        },
    };
    (p, op)
}

fn random_history(rng: &mut XorShift64, max_len: usize) -> Vec<(usize, Operation)> {
    let len = rng.index(max_len + 1);
    (0..len).map(|_| random_op(rng)).collect()
}

/// SharedMemory agrees with the literal oracle on random histories.
#[test]
fn memory_matches_oracle() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(case);
        let ops = random_history(&mut rng, 60);
        let mut mem = SharedMemory::new();
        let mut oracle = Oracle::default();
        for (p, op) in &ops {
            let got = mem.apply(ProcessId(*p), op);
            let want = oracle.apply(ProcessId(*p), op);
            assert_eq!(got, want, "case {case}: op {op} by p{p}");
        }
        // Final states agree too.
        for (r, (v, pset)) in &oracle.regs {
            assert_eq!(&mem.peek(*r), v, "case {case}");
            for p in 0..3 {
                assert_eq!(
                    mem.peek_linked(*r, ProcessId(p)),
                    pset.contains(&ProcessId(p)),
                    "case {case}"
                );
            }
        }
    }
}

/// An SC succeeds iff no successful SC, swap, or move-into happened on
/// the register since the caller's latest LL.
#[test]
fn sc_success_characterisation() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x5C00 + case);
        let ops = random_history(&mut rng, 60);
        let mut mem = SharedMemory::new();
        // For each (process, register): index of the last LL; for each
        // register: index of the last invalidating write.
        let mut last_ll: BTreeMap<(usize, u64), usize> = BTreeMap::new();
        let mut last_invalidate: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, (p, op)) in ops.iter().enumerate() {
            let resp = mem.apply(ProcessId(*p), op);
            match op {
                Operation::Ll(r) => {
                    last_ll.insert((*p, r.0), i);
                }
                Operation::Sc(r, _) => {
                    let expected = match last_ll.get(&(*p, r.0)) {
                        None => false,
                        Some(&t_ll) => last_invalidate.get(&r.0).is_none_or(|&t_w| t_w < t_ll),
                    };
                    assert_eq!(resp.flag(), Some(expected), "case {case}, step {i}");
                    if expected {
                        last_invalidate.insert(r.0, i);
                        // A successful SC also invalidates the winner's
                        // own link.
                        last_ll.retain(|&(_, reg), &mut t| !(reg == r.0 && t <= i));
                    }
                }
                Operation::Swap(r, _) => {
                    last_invalidate.insert(r.0, i);
                    last_ll.retain(|&(_, reg), &mut t| !(reg == r.0 && t <= i));
                }
                Operation::Move { dst, .. } => {
                    last_invalidate.insert(dst.0, i);
                    last_ll.retain(|&(_, reg), &mut t| !(reg == dst.0 && t <= i));
                }
                Operation::Validate(_) => {}
            }
        }
    }
}

/// `validate` never changes any observable state.
#[test]
fn validate_is_pure() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x7A11 + case);
        let ops = random_history(&mut rng, 30);
        let probe_reg = rng.below(4);
        let probe_pid = rng.index(3);
        let mut mem = SharedMemory::new();
        for (p, op) in &ops {
            mem.apply(ProcessId(*p), op);
        }
        let value_before = mem.peek(RegisterId(probe_reg));
        let links_before: Vec<bool> = (0..3)
            .map(|p| mem.peek_linked(RegisterId(probe_reg), ProcessId(p)))
            .collect();
        mem.apply(
            ProcessId(probe_pid),
            &Operation::Validate(RegisterId(probe_reg)),
        );
        assert_eq!(mem.peek(RegisterId(probe_reg)), value_before, "case {case}");
        let links_after: Vec<bool> = (0..3)
            .map(|p| mem.peek_linked(RegisterId(probe_reg), ProcessId(p)))
            .collect();
        assert_eq!(links_before, links_after, "case {case}");
    }
}

/// `move` leaves its source completely untouched.
#[test]
fn move_preserves_source() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x30F3 + case);
        let ops = random_history(&mut rng, 30);
        let src = rng.below(4);
        let dst = rng.below(4);
        let mut mem = SharedMemory::new();
        for (p, op) in &ops {
            mem.apply(ProcessId(*p), op);
        }
        let value_before = mem.peek(RegisterId(src));
        let links_before: Vec<bool> = (0..3)
            .map(|p| mem.peek_linked(RegisterId(src), ProcessId(p)))
            .collect();
        mem.apply(
            ProcessId(0),
            &Operation::Move {
                src: RegisterId(src),
                dst: RegisterId(dst),
            },
        );
        if src != dst {
            assert_eq!(
                mem.peek(RegisterId(src)),
                value_before.clone(),
                "case {case}"
            );
            let links_after: Vec<bool> = (0..3)
                .map(|p| mem.peek_linked(RegisterId(src), ProcessId(p)))
                .collect();
            assert_eq!(links_before, links_after, "case {case}");
        }
        // The destination always carries the source's value.
        assert_eq!(mem.peek(RegisterId(dst)), value_before, "case {case}");
    }
}
