//! Property-based validation of the shared-memory semantics against an
//! independent oracle.
//!
//! The oracle re-implements the Section-3 register semantics from the
//! paper's text, as directly as possible (one `match` per operation over a
//! `(value, pset)` pair), with none of the structure of the production
//! `SharedMemory`. Random operation sequences must behave identically on
//! both.

use llsc_shmem::{Operation, ProcessId, RegisterId, Response, SharedMemory, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// The oracle: a literal transcription of the paper's operation semantics.
#[derive(Default)]
struct Oracle {
    regs: BTreeMap<RegisterId, (Value, BTreeSet<ProcessId>)>,
}

impl Oracle {
    fn reg(&mut self, r: RegisterId) -> &mut (Value, BTreeSet<ProcessId>) {
        self.regs.entry(r).or_default()
    }

    fn apply(&mut self, p: ProcessId, op: &Operation) -> Response {
        match op {
            Operation::Ll(r) => {
                let (v, pset) = self.reg(*r);
                pset.insert(p);
                Response::Value(v.clone())
            }
            Operation::Validate(r) => {
                let (v, pset) = self.reg(*r);
                Response::Flagged {
                    ok: pset.contains(&p),
                    value: v.clone(),
                }
            }
            Operation::Sc(r, new) => {
                let (v, pset) = self.reg(*r);
                if pset.contains(&p) {
                    let prev = v.clone();
                    *v = new.clone();
                    pset.clear();
                    Response::Flagged {
                        ok: true,
                        value: prev,
                    }
                } else {
                    Response::Flagged {
                        ok: false,
                        value: v.clone(),
                    }
                }
            }
            Operation::Swap(r, new) => {
                let (v, pset) = self.reg(*r);
                let prev = v.clone();
                *v = new.clone();
                pset.clear();
                Response::Value(prev)
            }
            Operation::Move { src, dst } => {
                let moved = self.reg(*src).0.clone();
                let (v, pset) = self.reg(*dst);
                *v = moved;
                pset.clear();
                Response::Ack
            }
        }
    }
}

fn op_strategy() -> impl Strategy<Value = (usize, Operation)> {
    let reg = 0u64..4;
    let pid = 0usize..3;
    let val = (-4i64..4).prop_map(Value::from);
    prop_oneof![
        (pid.clone(), reg.clone()).prop_map(|(p, r)| (p, Operation::Ll(RegisterId(r)))),
        (pid.clone(), reg.clone()).prop_map(|(p, r)| (p, Operation::Validate(RegisterId(r)))),
        (pid.clone(), reg.clone(), val.clone())
            .prop_map(|(p, r, v)| (p, Operation::Sc(RegisterId(r), v))),
        (pid.clone(), reg.clone(), val)
            .prop_map(|(p, r, v)| (p, Operation::Swap(RegisterId(r), v))),
        (pid, reg.clone(), reg).prop_map(|(p, a, b)| {
            (
                p,
                Operation::Move {
                    src: RegisterId(a),
                    dst: RegisterId(b),
                },
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SharedMemory agrees with the literal oracle on random histories.
    #[test]
    fn memory_matches_oracle(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut mem = SharedMemory::new();
        let mut oracle = Oracle::default();
        for (p, op) in &ops {
            let got = mem.apply(ProcessId(*p), op);
            let want = oracle.apply(ProcessId(*p), op);
            prop_assert_eq!(got, want, "op {} by p{}", op, p);
        }
        // Final states agree too.
        for (r, (v, pset)) in &oracle.regs {
            prop_assert_eq!(&mem.peek(*r), v);
            for p in 0..3 {
                prop_assert_eq!(
                    mem.peek_linked(*r, ProcessId(p)),
                    pset.contains(&ProcessId(p))
                );
            }
        }
    }

    /// An SC succeeds iff no successful SC, swap, or move-into happened on
    /// the register since the caller's latest LL.
    #[test]
    fn sc_success_characterisation(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut mem = SharedMemory::new();
        // For each (process, register): index of the last LL; for each
        // register: index of the last invalidating write.
        let mut last_ll: BTreeMap<(usize, u64), usize> = BTreeMap::new();
        let mut last_invalidate: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, (p, op)) in ops.iter().enumerate() {
            let resp = mem.apply(ProcessId(*p), op);
            match op {
                Operation::Ll(r) => {
                    last_ll.insert((*p, r.0), i);
                }
                Operation::Sc(r, _) => {
                    let expected = match last_ll.get(&(*p, r.0)) {
                        None => false,
                        Some(&t_ll) => last_invalidate.get(&r.0).is_none_or(|&t_w| t_w < t_ll),
                    };
                    prop_assert_eq!(resp.flag(), Some(expected), "step {}", i);
                    if expected {
                        last_invalidate.insert(r.0, i);
                        // A successful SC also invalidates the winner's
                        // own link.
                        last_ll.retain(|&(_, reg), &mut t| !(reg == r.0 && t <= i));
                    }
                }
                Operation::Swap(r, _) => {
                    last_invalidate.insert(r.0, i);
                    last_ll.retain(|&(_, reg), &mut t| !(reg == r.0 && t <= i));
                }
                Operation::Move { dst, .. } => {
                    last_invalidate.insert(dst.0, i);
                    last_ll.retain(|&(_, reg), &mut t| !(reg == dst.0 && t <= i));
                }
                Operation::Validate(_) => {}
            }
        }
    }

    /// `validate` never changes any observable state.
    #[test]
    fn validate_is_pure(
        ops in prop::collection::vec(op_strategy(), 0..30),
        probe_reg in 0u64..4,
        probe_pid in 0usize..3,
    ) {
        let mut mem = SharedMemory::new();
        for (p, op) in &ops {
            mem.apply(ProcessId(*p), op);
        }
        let value_before = mem.peek(RegisterId(probe_reg));
        let links_before: Vec<bool> = (0..3)
            .map(|p| mem.peek_linked(RegisterId(probe_reg), ProcessId(p)))
            .collect();
        mem.apply(ProcessId(probe_pid), &Operation::Validate(RegisterId(probe_reg)));
        prop_assert_eq!(mem.peek(RegisterId(probe_reg)), value_before);
        let links_after: Vec<bool> = (0..3)
            .map(|p| mem.peek_linked(RegisterId(probe_reg), ProcessId(p)))
            .collect();
        prop_assert_eq!(links_before, links_after);
    }

    /// `move` leaves its source completely untouched.
    #[test]
    fn move_preserves_source(
        ops in prop::collection::vec(op_strategy(), 0..30),
        src in 0u64..4,
        dst in 0u64..4,
    ) {
        let mut mem = SharedMemory::new();
        for (p, op) in &ops {
            mem.apply(ProcessId(*p), op);
        }
        let value_before = mem.peek(RegisterId(src));
        let links_before: Vec<bool> = (0..3)
            .map(|p| mem.peek_linked(RegisterId(src), ProcessId(p)))
            .collect();
        mem.apply(
            ProcessId(0),
            &Operation::Move {
                src: RegisterId(src),
                dst: RegisterId(dst),
            },
        );
        if src != dst {
            prop_assert_eq!(mem.peek(RegisterId(src)), value_before.clone());
            let links_after: Vec<bool> = (0..3)
                .map(|p| mem.peek_linked(RegisterId(src), ProcessId(p)))
                .collect();
            prop_assert_eq!(links_before, links_after);
        }
        // The destination always carries the source's value.
        prop_assert_eq!(mem.peek(RegisterId(dst)), value_before);
    }
}
