//! `ProcMask` spill-path coverage: systems larger than the 128-bit fast
//! word.
//!
//! The subset sweeps cap `n` at 16, so the unit tests around them barely
//! leave the inline word; the scaling experiments push `n` past 128,
//! where ids spill into the extension vector. These tests pin down the
//! spill path's semantics: canonical `Eq`/`Hash` regardless of history,
//! set algebra agreeing with a `BTreeSet` oracle, and an end-to-end
//! executor run at `n = 130` whose LL/SC `Pset`s genuinely span the
//! boundary.

use llsc_shmem::dsl::{done, ll, sc};
use llsc_shmem::rng::XorShift64;
use llsc_shmem::{
    Executor, ExecutorConfig, FnAlgorithm, ProcMask, ProcessId, RegisterId, RoundRobinScheduler,
    RunOutcome, Value, ZeroTosses,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

fn hash_of(mask: &ProcMask) -> u64 {
    let mut h = DefaultHasher::new();
    mask.hash(&mut h);
    h.finish()
}

fn mask_of(oracle: &BTreeSet<usize>) -> ProcMask {
    oracle.iter().map(|&i| ProcessId(i)).collect()
}

#[test]
fn spilled_then_emptied_masks_are_canonically_equal() {
    // A mask that allocated spill blocks and then lost them must compare
    // and hash equal to one that never spilled: trailing zero blocks are
    // trimmed, not kept as history.
    let empty = ProcMask::new();
    let mut scarred = ProcMask::new();
    for id in [130, 260, 400] {
        assert!(scarred.insert(ProcessId(id)));
    }
    for id in [130, 260, 400] {
        assert!(scarred.remove(ProcessId(id)));
    }
    assert_eq!(scarred, empty);
    assert_eq!(hash_of(&scarred), hash_of(&empty));

    // Same with only the fast word still occupied.
    let mut low_only = ProcMask::new();
    low_only.insert(ProcessId(5));
    let mut was_wide = ProcMask::new();
    was_wide.insert(ProcessId(5));
    was_wide.insert(ProcessId(300));
    was_wide.remove(ProcessId(300));
    assert_eq!(was_wide, low_only);
    assert_eq!(hash_of(&was_wide), hash_of(&low_only));
    assert_eq!(format!("{was_wide:?}"), format!("{low_only:?}"));
}

#[test]
fn insertion_order_does_not_affect_equality_or_hash() {
    let ids = [0usize, 127, 128, 129, 255, 256, 300];
    let forward: ProcMask = ids.iter().map(|&i| ProcessId(i)).collect();
    let backward: ProcMask = ids.iter().rev().map(|&i| ProcessId(i)).collect();
    assert_eq!(forward, backward);
    assert_eq!(hash_of(&forward), hash_of(&backward));
    assert_eq!(
        forward.iter().collect::<Vec<_>>(),
        ids.iter().map(|&i| ProcessId(i)).collect::<Vec<_>>(),
        "iteration is ascending across the spill boundary"
    );
}

#[test]
fn union_and_intersection_match_a_btreeset_oracle() {
    // Deterministic random sets spanning 0..320 (fast word + 2 spill
    // blocks): every mask-level union/intersection must agree with the
    // BTreeSet it replaced, element for element.
    let mut rng = XorShift64::new(0x5EED);
    for round in 0..50 {
        let mut oracle_a = BTreeSet::new();
        let mut oracle_b = BTreeSet::new();
        for _ in 0..rng.index(40) {
            oracle_a.insert(rng.index(320));
        }
        for _ in 0..rng.index(40) {
            oracle_b.insert(rng.index(320));
        }
        let a = mask_of(&oracle_a);
        let b = mask_of(&oracle_b);

        let mut union = a.clone();
        union.union_with(&b);
        let union_oracle: BTreeSet<usize> = oracle_a.union(&oracle_b).copied().collect();
        assert_eq!(union, mask_of(&union_oracle), "round {round}: union");
        assert_eq!(union.len(), union_oracle.len());

        let mut inter = a.clone();
        inter.intersect_with(&b);
        let inter_oracle: BTreeSet<usize> = oracle_a.intersection(&oracle_b).copied().collect();
        assert_eq!(inter, mask_of(&inter_oracle), "round {round}: intersection");
        assert_eq!(inter.len(), inter_oracle.len());
        assert_eq!(
            hash_of(&inter),
            hash_of(&mask_of(&inter_oracle)),
            "round {round}: intersection is canonical"
        );

        // Algebraic sanity on the same pair.
        assert!(inter.is_subset(&a) && inter.is_subset(&b));
        assert!(union.is_superset(&a) && union.is_superset(&b));
    }
}

#[test]
fn intersection_with_a_narrow_mask_drops_spill_blocks() {
    let mut wide: ProcMask = [ProcessId(3), ProcessId(200), ProcessId(290)].into();
    let narrow: ProcMask = [ProcessId(3), ProcessId(7)].into();
    wide.intersect_with(&narrow);
    assert_eq!(wide, ProcMask::from([ProcessId(3)]));
    assert_eq!(
        hash_of(&wide),
        hash_of(&ProcMask::from([ProcessId(3)])),
        "dropped spill blocks leave no hash residue"
    );
}

#[test]
fn executor_smoke_run_at_n_130_crosses_the_spill_boundary() {
    // 130 processes all LL register 0 (its Pset then holds ids past 128),
    // then race their SCs: exactly one must win, everyone terminates, and
    // the run classifies as Completed.
    let alg = FnAlgorithm::new("contending-sc-130", |pid: ProcessId, _n| {
        let r = RegisterId(0);
        ll(r, move |_prev| {
            sc(r, Value::from(pid.0 as i64), |ok, _prev| {
                done(Value::from(ok))
            })
        })
        .into_program()
    });
    let n = 130;
    let mut exec = Executor::new(
        &alg,
        n,
        std::sync::Arc::new(ZeroTosses),
        ExecutorConfig::default(),
    );
    let mut sched = RoundRobinScheduler::new();
    exec.drive(&mut sched, 100_000).unwrap();
    assert_eq!(exec.run_outcome(), RunOutcome::Completed);
    let winners = (0..n)
        .filter(|&i| exec.verdict(ProcessId(i)) == Some(&Value::from(true)))
        .count();
    assert_eq!(winners, 1, "exactly one SC succeeds among 130 processes");
}
