//! A Group-Update-style oblivious universal construction (after Afek,
//! Dauber & Touitou) with measured `O(log n)` shared-access complexity —
//! the upper bound that makes the paper's lower bound **tight**.
//!
//! ## The discipline that earns the logarithm
//!
//! The naive combining tree ([`crate::CombiningTreeUniversal`]) lets every
//! process race to the root, where SC contention serialises appends and
//! costs `Θ(n)`. Group Update's key idea is *pairing with parking*:
//!
//! * Processes are leaves of a complete binary tree. Each internal node is
//!   a **meeting point** for the leaders of its two child subtrees.
//! * A subtree leader arriving at a node `swap`s its batch of `(pid, op)`
//!   contributions into the node register. If it receives the initial
//!   marker, it arrived **first**: its batch is parked for its sibling and
//!   it becomes a *follower*, polling the log register until its operation
//!   appears. If it receives the sibling leader's parked batch, it arrived
//!   **second**: it absorbs the batch and climbs as the merged group's
//!   leader.
//! * Exactly one leader survives per subtree, so the register of every
//!   node is swapped at most twice and the root meeting produces a single
//!   final leader carrying *all* `n` contributions, which it installs into
//!   the log register with one `swap` — no contention at all.
//! * Every process replays the log through the sequential specification to
//!   compute its response; the log order is the linearisation.
//!
//! Per process: at most `⌈log₂ n⌉` swaps while climbing, plus `O(log n)`
//! log polls while following (under round-based schedules the log appears
//! within `O(log n)` rounds). Experiment E8 measures exactly this against
//! the `Θ(n)` of the Herlihy-style baseline and the naive tree.
//!
//! ## Faithfulness note (recorded in DESIGN.md)
//!
//! Followers here *poll* the log rather than helping their leader climb,
//! so the construction requires a fair schedule (every non-terminated
//! process keeps taking steps) to terminate — the paper's Figure-2
//! adversary, round-robin, and random schedules all qualify; a purely
//! sequential run-to-completion schedule does not (a parked follower would
//! poll forever). The original ADT construction adds follower-helping
//! machinery to be wait-free under arbitrary schedules; reproducing that
//! handshake is out of scope, and all shipped measurements use fair
//! schedules, where the complexity shape matches the paper's claim.

use crate::implementation::ObjectImplementation;
use llsc_objects::{apply_all, ObjectSpec};
use llsc_shmem::dsl::{read, swap, Step};
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt;
use std::sync::Arc;

/// Registers: `NODE_BASE + 0` is the log; `NODE_BASE + heap_index` (heap
/// index ≥ 1) are the meeting points.
const NODE_BASE: u64 = 3000;

fn log_reg() -> RegisterId {
    RegisterId(NODE_BASE)
}

fn node_reg(heap_index: u64) -> RegisterId {
    RegisterId(NODE_BASE + heap_index)
}

/// Number of leaf slots: the smallest power of two ≥ n.
fn leaf_slots(n: usize) -> u64 {
    (n.max(1) as u64).next_power_of_two()
}

fn entry(p: ProcessId, op: &Value) -> Value {
    Value::tuple([Value::Pid(p), op.clone()])
}

fn entry_pid(e: &Value) -> ProcessId {
    e.index(0).and_then(Value::as_pid).expect("entry pid")
}

fn entry_op(e: &Value) -> &Value {
    e.index(1).expect("entry op")
}

/// Union of two batches, deduplicated by process id, sorted by process id.
fn union(a: &Value, b: &Value) -> Value {
    let mut entries: Vec<Value> = a.as_tuple().expect("batch").to_vec();
    for e in b.as_tuple().expect("batch") {
        if !entries.iter().any(|x| entry_pid(x) == entry_pid(e)) {
            entries.push(e.clone());
        }
    }
    entries.sort_by_key(entry_pid);
    Value::tuple(entries)
}

fn replay_response(spec: &dyn ObjectSpec, log: &Value, p: ProcessId) -> Value {
    let entries = log.as_tuple().expect("log");
    let upto = entries
        .iter()
        .position(|e| entry_pid(e) == p)
        .expect("p's entry is in the log");
    let ops: Vec<Value> = entries[..=upto]
        .iter()
        .map(|e| entry_op(e).clone())
        .collect();
    let (_, resps) = apply_all(spec, &ops);
    resps.into_iter().next_back().expect("non-empty prefix")
}

/// The Group-Update-style universal construction (oblivious, single-use,
/// measured `O(log n)` under fair schedules).
///
/// # Examples
///
/// ```
/// use llsc_universal::{AdtTreeUniversal, measure, MeasureConfig, ScheduleKind};
/// use llsc_objects::FetchIncrement;
/// use std::sync::Arc;
///
/// let spec = Arc::new(FetchIncrement::new(16));
/// let imp = AdtTreeUniversal::new(spec.clone());
/// let ops = vec![FetchIncrement::op(); 8];
/// let r = measure(&imp, spec.as_ref(), 8, &ops, ScheduleKind::Adversary, &MeasureConfig::default())
///     .expect("the adversary run completes within the default budgets");
/// assert!(r.linearizable);
/// ```
pub struct AdtTreeUniversal {
    spec: Arc<dyn ObjectSpec>,
}

impl AdtTreeUniversal {
    /// Creates the construction instantiated with `spec`.
    pub fn new(spec: Arc<dyn ObjectSpec>) -> Self {
        AdtTreeUniversal { spec }
    }
}

impl fmt::Debug for AdtTreeUniversal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdtTreeUniversal")
            .field("spec", &self.spec.name())
            .finish()
    }
}

/// `true` iff the subtree rooted at heap index `v` contains at least one
/// of the `n` processes (the tree has `leaf_slots(n)` leaf positions, the
/// high ones unused when `n` is not a power of two).
fn subtree_nonempty(v: u64, n: usize) -> bool {
    let slots = leaf_slots(n);
    // Widen v to the leaf row: the lowest leaf under v.
    let mut low = v;
    while low < slots {
        low *= 2;
    }
    (low - slots) < n as u64
}

impl ObjectImplementation for AdtTreeUniversal {
    fn name(&self) -> String {
        format!("adt-group-update[{}]", self.spec.name())
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        // The log and every meeting point start at the Unit marker.
        let slots = leaf_slots(n);
        (0..slots).map(|i| (node_reg(i), Value::Unit)).collect()
    }

    fn invoke(
        &self,
        pid: ProcessId,
        n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        let spec = Arc::clone(&self.spec);
        let leaf = leaf_slots(n) + pid.0 as u64;
        let batch = Value::tuple([entry(pid, &op)]);
        climb(spec, pid, n, leaf, batch, k)
    }
}

/// Climbs from tree position `child` towards the root, pairing at each
/// meeting point; installs the log upon winning at the root.
fn climb(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    n: usize,
    child: u64,
    batch: Value,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    if child == 1 {
        // Final leader: install the complete log with a single swap.
        return swap(log_reg(), batch.clone(), move |_| {
            k(replay_response(spec.as_ref(), &batch, pid))
        });
    }
    let v = child / 2;
    let sibling = child ^ 1;
    if !subtree_nonempty(sibling, n) {
        // No meeting needed: the sibling subtree has no processes.
        return climb(spec, pid, n, v, batch, k);
    }
    swap(node_reg(v), batch.clone(), move |received| {
        if received.is_unit() {
            // First at the meeting point: my batch is parked for the
            // sibling leader; follow the log from here on.
            follow(spec, pid, k)
        } else {
            // Second: absorb the parked batch and lead the merged group.
            let merged = union(&batch, &received);
            climb(spec, pid, n, v, merged, k)
        }
    })
}

/// Polls the log until it appears, then computes the response.
fn follow(spec: Arc<dyn ObjectSpec>, pid: ProcessId, k: Box<dyn FnOnce(Value) -> Step>) -> Step {
    read(log_reg(), move |log| {
        if log.is_unit() {
            follow(spec, pid, k)
        } else {
            k(replay_response(spec.as_ref(), &log, pid))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureConfig, ScheduleKind};
    use llsc_objects::{FetchIncrement, Queue, Stack};

    fn fi(n: usize, kind: ScheduleKind) -> crate::measure::MeasureResult {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp = AdtTreeUniversal::new(spec.clone());
        let ops = vec![FetchIncrement::op(); n];
        measure(
            &imp,
            spec.as_ref(),
            n,
            &ops,
            kind,
            &MeasureConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn subtree_emptiness() {
        // n = 5, slots = 8: leaves 8..12 occupied, 13..15 empty.
        assert!(subtree_nonempty(1, 5));
        assert!(subtree_nonempty(2, 5)); // leaves 8..11
        assert!(subtree_nonempty(3, 5)); // leaves 12..15 → 12 occupied
        assert!(subtree_nonempty(6, 5)); // leaves 12,13 → 12 occupied
        assert!(!subtree_nonempty(7, 5)); // leaves 14,15 → empty
        assert!(!subtree_nonempty(13, 5));
        assert!(subtree_nonempty(12, 5));
    }

    #[test]
    fn linearizable_under_fair_schedules() {
        for kind in [
            ScheduleKind::RoundRobin,
            ScheduleKind::RandomInterleave { seed: 7 },
            ScheduleKind::Adversary,
        ] {
            for n in [1, 2, 3, 5, 8] {
                let r = fi(n, kind);
                assert!(r.linearizable, "{kind:?} n={n}");
                let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
                got.sort_unstable();
                assert_eq!(got, (0..n as i128).collect::<Vec<_>>(), "{kind:?} n={n}");
            }
        }
    }

    #[test]
    fn single_process_costs_one_swap() {
        let r = fi(1, ScheduleKind::RoundRobin);
        assert_eq!(r.max_ops, 1, "solo: one log swap, no meetings");
    }

    #[test]
    fn adversary_cost_is_logarithmic() {
        // The headline: under the paper's own adversary, the measured
        // shared-access complexity is O(log n) — the lower bound is tight.
        for n in [4, 16, 64, 256] {
            let cfg = MeasureConfig {
                check_linearizability: n <= 64,
                ..MeasureConfig::default()
            };
            let spec = Arc::new(FetchIncrement::new(32));
            let imp = AdtTreeUniversal::new(spec.clone());
            let ops = vec![FetchIncrement::op(); n];
            let r = measure(&imp, spec.as_ref(), n, &ops, ScheduleKind::Adversary, &cfg).unwrap();
            let log2 = (n as f64).log2();
            assert!(
                (r.max_ops as f64) <= 4.0 * log2 + 6.0,
                "n={n}: max_ops={} not O(log n)",
                r.max_ops
            );
        }
    }

    #[test]
    fn scales_past_the_naive_tree_and_herlihy() {
        let n = 64;
        let adt = fi(n, ScheduleKind::Adversary);
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let naive = measure(
            &crate::CombiningTreeUniversal::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &MeasureConfig::default(),
        )
        .unwrap();
        let herlihy = measure(
            &crate::HerlihyUniversal::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(
            adt.max_ops < herlihy.max_ops && adt.max_ops < naive.max_ops,
            "adt={} herlihy={} naive={}",
            adt.max_ops,
            herlihy.max_ops,
            naive.max_ops
        );
    }

    #[test]
    fn queue_and_stack_instantiations() {
        let q = Arc::new(Queue::with_numbered_items(6));
        let imp = AdtTreeUniversal::new(q.clone());
        let ops = vec![Queue::dequeue_op(); 6];
        let r = measure(
            &imp,
            q.as_ref(),
            6,
            &ops,
            ScheduleKind::Adversary,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.linearizable);
        let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);

        let st = Arc::new(Stack::with_numbered_items(4));
        let imp = AdtTreeUniversal::new(st.clone());
        let ops = vec![Stack::pop_op(); 4];
        let r = measure(
            &imp,
            st.as_ref(),
            4,
            &ops,
            ScheduleKind::RandomInterleave { seed: 4 },
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.linearizable);
    }

    #[test]
    fn union_dedups_and_sorts() {
        let a = Value::tuple([entry(ProcessId(3), &Value::from(1i64))]);
        let b = Value::tuple([
            entry(ProcessId(0), &Value::from(2i64)),
            entry(ProcessId(3), &Value::from(1i64)),
        ]);
        let u = union(&a, &b);
        let pids: Vec<usize> = u
            .as_tuple()
            .unwrap()
            .iter()
            .map(|e| entry_pid(e).0)
            .collect();
        assert_eq!(pids, vec![0, 3]);
    }

    #[test]
    fn name_mentions_group_update() {
        let imp = AdtTreeUniversal::new(Arc::new(FetchIncrement::new(8)));
        assert!(imp.name().contains("adt-group-update"));
        assert!(!imp.is_multi_use());
    }
}
