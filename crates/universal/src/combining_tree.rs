//! A lock-free LL/SC combining tree — the *ablation* showing why naive
//! combining does not reach the `O(log n)` bound.
//!
//! Processes are the leaves of a complete binary tree; each process climbs
//! from its leaf to the root, at every internal node merging the batch of
//! `(pid, op)` contributions it carries into the node register with an
//! LL / union / SC retry loop, and finally appends its batch to the root
//! *log*, whose order is the linearisation.
//!
//! This is the "obvious" combining-tree design — and measuring it is the
//! point: under the paper's Figure-2 adversary (and plain round-robin) the
//! root SC serialises appends roughly one batch per round, so the worst
//! process pays `Θ(n)` shared operations despite the tree. The batching
//! only pays off when losers *wait for* winners, which is what the
//! Group-Update leader/follower discipline of [`crate::AdtTreeUniversal`]
//! adds. The bench suite reports both, as the ablation pair of
//! experiment E8.
//!
//! Properties: oblivious, single-use, wait-free (a process retries at a
//! node at most once per other process in the node's subtree, so the total
//! cost is bounded by `O(n)`); solo cost `2·(⌈log₂ n⌉ + 1)`.

use crate::implementation::ObjectImplementation;
use llsc_objects::{apply_all, ObjectSpec};
use llsc_shmem::dsl::{ll, sc, Step};
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt;
use std::sync::Arc;

/// Tree node registers: `NODE_BASE + heap_index`. The root is heap index 1,
/// so the root/log register is `NODE_BASE + 1`.
const NODE_BASE: u64 = 2000;

fn node_reg(heap_index: u64) -> RegisterId {
    RegisterId(NODE_BASE + heap_index)
}

/// Number of leaf slots: the smallest power of two ≥ n.
fn leaf_slots(n: usize) -> u64 {
    (n.max(1) as u64).next_power_of_two()
}

fn entry(p: ProcessId, op: &Value) -> Value {
    Value::tuple([Value::Pid(p), op.clone()])
}

fn entry_pid(e: &Value) -> ProcessId {
    e.index(0)
        .and_then(Value::as_pid)
        .expect("a batch entry is (Pid, op); slot 0 must be the contributing process id")
}

fn entry_op(e: &Value) -> &Value {
    e.index(1)
        .expect("a batch entry is (Pid, op); slot 1 must be the contributed operation")
}

fn contains(batch: &Value, p: ProcessId) -> bool {
    batch
        .as_tuple()
        .expect("a combining-tree batch register always holds a tuple of entries")
        .iter()
        .any(|e| entry_pid(e) == p)
}

/// Union of two batches, deduplicated by process id, sorted by process id.
fn union(a: &Value, b: &Value) -> Value {
    let mut entries: Vec<Value> = a
        .as_tuple()
        .expect("union: left batch must be a tuple of entries")
        .to_vec();
    for e in b
        .as_tuple()
        .expect("union: right batch must be a tuple of entries")
    {
        if !entries.iter().any(|x| entry_pid(x) == entry_pid(e)) {
            entries.push(e.clone());
        }
    }
    entries.sort_by_key(entry_pid);
    Value::tuple(entries)
}

/// Appends to `log` every entry of `batch` not already present, in
/// ascending pid order (the existing prefix is preserved).
fn extend_log(log: &Value, batch: &Value) -> Value {
    let mut entries = log
        .as_tuple()
        .expect("the root log register always holds a tuple of entries")
        .to_vec();
    let mut fresh: Vec<Value> = batch
        .as_tuple()
        .expect("extend_log: the appended batch must be a tuple of entries")
        .iter()
        .filter(|e| !contains(log, entry_pid(e)))
        .cloned()
        .collect();
    fresh.sort_by_key(entry_pid);
    entries.extend(fresh);
    Value::tuple(entries)
}

fn replay_response(spec: &dyn ObjectSpec, log: &Value, p: ProcessId) -> Value {
    let entries = log
        .as_tuple()
        .expect("the root log register always holds a tuple of entries");
    let upto = entries
        .iter()
        .position(|e| entry_pid(e) == p)
        .expect("replay_response is only called after p's entry reached the root log");
    let ops: Vec<Value> = entries[..=upto]
        .iter()
        .map(|e| entry_op(e).clone())
        .collect();
    let (_, resps) = apply_all(spec, &ops);
    resps
        .into_iter()
        .next_back()
        .expect("the replayed prefix ends at p's own entry, so it is non-empty")
}

/// The lock-free LL/SC combining tree (oblivious, single-use, wait-free
/// with worst case `O(n)`, solo cost `Θ(log n)`).
///
/// # Examples
///
/// ```
/// use llsc_universal::{CombiningTreeUniversal, measure, MeasureConfig, ScheduleKind};
/// use llsc_objects::FetchIncrement;
/// use std::sync::Arc;
///
/// let spec = Arc::new(FetchIncrement::new(16));
/// let imp = CombiningTreeUniversal::new(spec.clone());
/// let ops = vec![FetchIncrement::op(); 8];
/// let r = measure(&imp, spec.as_ref(), 8, &ops, ScheduleKind::RoundRobin, &MeasureConfig::default())
///     .expect("the round-robin run completes within the default budgets");
/// assert!(r.linearizable);
/// ```
pub struct CombiningTreeUniversal {
    spec: Arc<dyn ObjectSpec>,
}

impl CombiningTreeUniversal {
    /// Creates the construction instantiated with `spec`.
    pub fn new(spec: Arc<dyn ObjectSpec>) -> Self {
        CombiningTreeUniversal { spec }
    }

    /// The heap indices of the internal nodes process `p` visits, from its
    /// leaf's parent up to and including the root (index 1).
    fn path(p: ProcessId, n: usize) -> Vec<u64> {
        let mut node = (leaf_slots(n) + p.0 as u64) / 2;
        let mut path = Vec::new();
        while node >= 1 {
            path.push(node);
            node /= 2;
        }
        if path.is_empty() {
            // A single-process tree has no internal nodes; go straight to
            // the root log.
            path.push(1);
        }
        path
    }
}

impl fmt::Debug for CombiningTreeUniversal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningTreeUniversal")
            .field("spec", &self.spec.name())
            .finish()
    }
}

impl ObjectImplementation for CombiningTreeUniversal {
    fn name(&self) -> String {
        format!("combining-tree-llsc[{}]", self.spec.name())
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        let slots = leaf_slots(n);
        (1..slots * 2)
            .map(|i| (node_reg(i), Value::empty_tuple()))
            .collect()
    }

    fn invoke(
        &self,
        pid: ProcessId,
        n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        let spec = Arc::clone(&self.spec);
        let path = Self::path(pid, n);
        let batch = Value::tuple([entry(pid, &op)]);
        climb(spec, pid, path, 0, batch, k)
    }
}

/// Processes node `path[level]`; the root (last path element) installs the
/// batch into the log and computes the response.
fn climb(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    path: Vec<u64>,
    level: usize,
    batch: Value,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    let node = path[level];
    let is_root = node == 1;
    ll(node_reg(node), move |cur| {
        if is_root {
            if contains(&cur, pid) {
                // Helped: my op is already in the log.
                return k(replay_response(spec.as_ref(), &cur, pid));
            }
            let new_log = extend_log(&cur, &batch);
            sc(node_reg(node), new_log.clone(), move |ok, _| {
                if ok {
                    k(replay_response(spec.as_ref(), &new_log, pid))
                } else {
                    climb(spec, pid, path, level, batch, k)
                }
            })
        } else {
            if contains(&cur, pid) {
                // A same-subtree straggler already carried my batch here;
                // take the combined group upward.
                let carried = union(&cur, &batch);
                return climb(spec, pid, path, level + 1, carried, k);
            }
            let merged = union(&cur, &batch);
            sc(node_reg(node), merged.clone(), move |ok, _| {
                if ok {
                    climb(spec, pid, path, level + 1, merged, k)
                } else {
                    climb(spec, pid, path, level, batch, k)
                }
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureConfig, ScheduleKind};
    use llsc_objects::{FetchIncrement, Queue, Stack};

    fn fi(n: usize, kind: ScheduleKind) -> crate::measure::MeasureResult {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp = CombiningTreeUniversal::new(spec.clone());
        let ops = vec![FetchIncrement::op(); n];
        measure(
            &imp,
            spec.as_ref(),
            n,
            &ops,
            kind,
            &MeasureConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn paths_lead_to_root() {
        assert_eq!(CombiningTreeUniversal::path(ProcessId(0), 1), vec![1]);
        assert_eq!(CombiningTreeUniversal::path(ProcessId(0), 4), vec![2, 1]);
        assert_eq!(CombiningTreeUniversal::path(ProcessId(3), 4), vec![3, 1]);
        assert_eq!(CombiningTreeUniversal::path(ProcessId(5), 8), vec![6, 3, 1]);
        // Non-power-of-two n rounds the leaf row up.
        assert_eq!(CombiningTreeUniversal::path(ProcessId(4), 5), vec![6, 3, 1]);
    }

    #[test]
    fn linearizable_under_all_schedules() {
        for kind in [
            ScheduleKind::Sequential,
            ScheduleKind::RoundRobin,
            ScheduleKind::RandomInterleave { seed: 9 },
            ScheduleKind::Adversary,
        ] {
            let r = fi(8, kind);
            assert!(r.linearizable, "{kind:?}");
            let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..8).collect::<Vec<i128>>(), "{kind:?}");
        }
    }

    #[test]
    fn solo_cost_is_logarithmic() {
        // Contention-free: 2 ops (LL+SC) per tree level.
        for n in [1, 2, 4, 16, 64] {
            let r = fi(n, ScheduleKind::Sequential);
            let levels = CombiningTreeUniversal::path(ProcessId(0), n).len() as u64;
            assert_eq!(r.max_ops, 2 * levels, "n={n}");
        }
    }

    #[test]
    fn adversary_cost_is_linear_the_ablation_point() {
        // Root SC serialisation defeats naive combining: under the
        // Figure-2 adversary the worst process pays Θ(n). This is the
        // ablation motivating the leader/follower discipline of
        // AdtTreeUniversal.
        for n in [8, 32, 128] {
            let r = fi(n, ScheduleKind::Adversary);
            assert!(r.linearizable || !r.lin_checked, "n={n}");
            assert!(
                r.max_ops as usize >= n,
                "n={n}: max_ops={} unexpectedly sublinear",
                r.max_ops
            );
            assert!(
                (r.max_ops as usize) <= 4 * n + 16,
                "n={n}: max_ops={} exceeds the O(n) wait-freedom bound",
                r.max_ops
            );
        }
    }

    #[test]
    fn batches_union_and_dedup() {
        let a = Value::tuple([entry(ProcessId(2), &Value::from(1i64))]);
        let b = Value::tuple([
            entry(ProcessId(1), &Value::from(2i64)),
            entry(ProcessId(2), &Value::from(1i64)),
        ]);
        let u = union(&a, &b);
        let pids: Vec<usize> = u
            .as_tuple()
            .unwrap()
            .iter()
            .map(|e| entry_pid(e).0)
            .collect();
        assert_eq!(pids, vec![1, 2]);
    }

    #[test]
    fn log_extension_preserves_prefix() {
        let log = Value::tuple([entry(ProcessId(3), &Value::from(1i64))]);
        let batch = Value::tuple([
            entry(ProcessId(3), &Value::from(1i64)),
            entry(ProcessId(0), &Value::from(2i64)),
        ]);
        let out = extend_log(&log, &batch);
        let pids: Vec<usize> = out
            .as_tuple()
            .unwrap()
            .iter()
            .map(|e| entry_pid(e).0)
            .collect();
        assert_eq!(pids, vec![3, 0], "prefix kept, fresh entries appended");
    }

    #[test]
    fn queue_and_stack_instantiations() {
        let q = Arc::new(Queue::with_numbered_items(6));
        let imp = CombiningTreeUniversal::new(q.clone());
        let ops = vec![Queue::dequeue_op(); 6];
        let r = measure(
            &imp,
            q.as_ref(),
            6,
            &ops,
            ScheduleKind::Adversary,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.linearizable);
        let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);

        let st = Arc::new(Stack::with_numbered_items(4));
        let imp = CombiningTreeUniversal::new(st.clone());
        let ops = vec![Stack::pop_op(); 4];
        let r = measure(
            &imp,
            st.as_ref(),
            4,
            &ops,
            ScheduleKind::RandomInterleave { seed: 2 },
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.linearizable);
    }
}
