//! The direct, semantics-exploiting LL/SC implementation.
//!
//! The whole point of the paper's lower bound is that it applies only to
//! *oblivious* constructions: implementations that exploit a type's
//! semantics can beat Ω(log n). This module is the standard way they do it
//! with LL/SC: keep the entire object state in one (unbounded) register and
//! apply operations with an optimistic LL / compute / SC retry loop.
//!
//! * Contention-free, this costs exactly **2 shared operations** per object
//!   operation — constant, independent of `n`, beating the oblivious bound.
//! * Under contention it is lock-free but not wait-free: a process can
//!   retry forever while others keep succeeding. The measurement harness
//!   shows the Θ(n) contended cost (experiment E10), which is precisely the
//!   contrast the paper's introduction draws.

use crate::implementation::ObjectImplementation;
use llsc_objects::ObjectSpec;
use llsc_shmem::dsl::{ll, sc, Step};
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt;
use std::sync::Arc;

/// The register holding the object state.
const STATE_REG: RegisterId = RegisterId(0);

/// A direct LL/SC implementation of any [`ObjectSpec`]: the state lives in
/// a single register; operations are applied with an optimistic retry loop.
///
/// Multi-use and linearizable (each operation takes effect at its
/// successful SC).
///
/// # Examples
///
/// ```
/// use llsc_universal::{DirectLlSc, measure, MeasureConfig, ScheduleKind};
/// use llsc_objects::FetchIncrement;
/// use std::sync::Arc;
///
/// let spec = Arc::new(FetchIncrement::new(16));
/// let imp = DirectLlSc::new(spec.clone());
/// let ops = vec![FetchIncrement::op(); 4];
/// let result = measure(&imp, spec.as_ref(), 4, &ops, ScheduleKind::Sequential, &MeasureConfig::default())
///     .expect("solo runs complete within the default budgets");
/// assert!(result.linearizable);
/// // Contention-free: exactly 2 shared ops (LL + SC) per operation.
/// assert_eq!(result.max_ops, 2);
/// ```
pub struct DirectLlSc {
    spec: Arc<dyn ObjectSpec>,
}

impl DirectLlSc {
    /// Creates the direct implementation of `spec`.
    pub fn new(spec: Arc<dyn ObjectSpec>) -> Self {
        DirectLlSc { spec }
    }
}

impl fmt::Debug for DirectLlSc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DirectLlSc")
            .field("spec", &self.spec.name())
            .finish()
    }
}

impl ObjectImplementation for DirectLlSc {
    fn name(&self) -> String {
        format!("direct-llsc[{}]", self.spec.name())
    }

    fn initial_memory(&self, _n: usize) -> Vec<(RegisterId, Value)> {
        vec![(STATE_REG, self.spec.initial())]
    }

    fn invoke(
        &self,
        _pid: ProcessId,
        _n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        let spec = Arc::clone(&self.spec);
        attempt(spec, op, k)
    }

    fn is_multi_use(&self) -> bool {
        true
    }
}

fn attempt(spec: Arc<dyn ObjectSpec>, op: Value, k: Box<dyn FnOnce(Value) -> Step>) -> Step {
    ll(STATE_REG, move |state| {
        let (next, resp) = spec.apply(&state, &op);
        sc(STATE_REG, next, move |ok, _| {
            if ok {
                k(resp)
            } else {
                attempt(spec, op, k)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureConfig, ScheduleKind};
    use llsc_objects::{Counter, FetchIncrement, Queue, Stack};

    #[test]
    fn contention_free_cost_is_two_ops() {
        let spec = Arc::new(FetchIncrement::new(16));
        let imp = DirectLlSc::new(spec.clone());
        for n in [1, 4, 16, 64] {
            let ops = vec![FetchIncrement::op(); n];
            let r = measure(
                &imp,
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::Sequential,
                &MeasureConfig::default(),
            )
            .unwrap();
            assert!(r.linearizable, "n={n}");
            assert_eq!(r.max_ops, 2, "n={n}: solo cost is LL+SC");
        }
    }

    #[test]
    fn contended_cost_grows_linearly() {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp = DirectLlSc::new(spec.clone());
        let mut prev = 0;
        for n in [2, 8, 32] {
            let ops = vec![FetchIncrement::op(); n];
            let r = measure(
                &imp,
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::Adversary,
                &MeasureConfig::default(),
            )
            .unwrap();
            assert!(r.linearizable, "n={n}");
            // Under the round adversary every round exactly one SC wins, so
            // the last process performs Θ(n) operations.
            assert!(r.max_ops >= n as u64, "n={n}: max_ops={}", r.max_ops);
            assert!(r.max_ops > prev);
            prev = r.max_ops;
        }
    }

    #[test]
    fn queue_and_stack_are_linearizable_under_adversary() {
        let q = Arc::new(Queue::with_numbered_items(6));
        let imp = DirectLlSc::new(q.clone());
        let ops = vec![Queue::dequeue_op(); 6];
        let r = measure(
            &imp,
            q.as_ref(),
            6,
            &ops,
            ScheduleKind::Adversary,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.linearizable);

        let st = Arc::new(Stack::with_numbered_items(5));
        let imp = DirectLlSc::new(st.clone());
        let ops = vec![Stack::pop_op(); 5];
        let r = measure(
            &imp,
            st.as_ref(),
            5,
            &ops,
            ScheduleKind::RandomInterleave { seed: 3 },
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.linearizable);
    }

    #[test]
    fn multi_use_chaining_works() {
        // Increment then read through the same implementation instance.
        use llsc_shmem::dsl::done;
        use llsc_shmem::{Executor, ExecutorConfig, FnAlgorithm, ZeroTosses};
        let spec = Arc::new(Counter::new(16));
        let imp = Arc::new(DirectLlSc::new(spec));
        assert!(imp.is_multi_use());
        let imp2 = Arc::clone(&imp);
        let alg = FnAlgorithm::new("inc-then-read", move |pid, n| {
            let imp3 = Arc::clone(&imp2);
            imp2.invoke(
                pid,
                n,
                Counter::increment_op(),
                Box::new(move |_ack| imp3.invoke(pid, n, Counter::read_op(), Box::new(done))),
            )
            .into_program()
        })
        .with_initial_memory(imp.initial_memory(3));
        let mut e = Executor::new(
            &alg,
            3,
            std::sync::Arc::new(ZeroTosses),
            ExecutorConfig::default(),
        );
        while e.step_round_robin().unwrap() {}
        // The last reader sees 3.
        let max = llsc_shmem::ProcessId::all(3)
            .map(|p| e.verdict(p).unwrap().as_int().unwrap())
            .max()
            .unwrap();
        assert_eq!(max, 3);
    }

    #[test]
    fn name_mentions_spec() {
        let imp = DirectLlSc::new(Arc::new(FetchIncrement::new(8)));
        assert_eq!(imp.name(), "direct-llsc[fetch&increment(k=8)]");
        assert!(format!("{imp:?}").contains("fetch&increment"));
    }
}
