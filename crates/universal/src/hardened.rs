//! Fault-hardened universal constructions: epoch/checksum self-validation
//! against the memory-fault adversary.
//!
//! The seeded [`FaultPlan`](llsc_shmem::FaultPlan) adversary delivers two
//! fault classes the strong Section-3 model excludes: **spurious SC
//! failures** (weak-LL/SC semantics) and **transient register corruption**.
//! The constructions here are hardened twins of [`DirectLlSc`],
//! [`CombiningTreeUniversal`] and [`AdtTreeUniversal`]
//! (`crate::{DirectLlSc, CombiningTreeUniversal, AdtTreeUniversal}`)
//! designed around one invariant: **zero extra shared accesses when no
//! fault fires** — every check rides on data an operation already returns.
//!
//! * [`HardenedDirectLlSc`] keeps `(state, epoch)` in the state register,
//!   sealed with a [`Value::fingerprint`] checksum. Every successful SC
//!   increments the epoch, so a failed SC that observes *our own* epoch is
//!   spurious (a fault-free failure always observes a larger epoch), and a
//!   value that does not checksum is corruption — recovered by restarting
//!   from the sealed initial state.
//! * [`HardenedCombiningTreeUniversal`] seals every node batch. Fault-free
//!   batches only grow (each successful SC installs a strict superset), so
//!   a failed SC observing an *unchanged* batch is spurious; a node that
//!   does not checksum is treated as empty and repaired by the next SC.
//! * [`HardenedAdtTreeUniversal`] seals parked batches and the log. A
//!   meeting point corrupted in place is detected on receipt (never
//!   absorbed into the linearisation); the detecting leader climbs on with
//!   its own group only, which degrades safely: orphaned followers stall
//!   (a reported budget-exhaustion) rather than return wrong answers.
//!
//! Detected faults trigger a bounded backoff ([`BACKOFF_CAP`] scratch
//! reads) before the retry, and each process publishes its detection count
//! to [`hardened_detect_reg`]`(pid)` just before responding — but only
//! when the count is nonzero, so fault-free runs never touch telemetry.
//! Experiment E16 reads these registers to split wrong answers into
//! *detected* and *silent*.

use crate::implementation::ObjectImplementation;
use llsc_objects::{apply_all, ObjectSpec};
use llsc_shmem::dsl::{ll, read, sc, swap, Step};
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt;
use std::sync::Arc;

/// Base of the detection-telemetry registers: `DETECT_BASE + pid`.
pub const DETECT_BASE: u64 = 4000;
/// Base of the backoff scratch registers.
const BACKOFF_BASE: u64 = 4064;
/// Maximum backoff reads before a detected-fault retry.
pub const BACKOFF_CAP: u64 = 3;

/// The telemetry register process `pid` swaps its detection count into —
/// touched only when at least one fault was detected.
pub fn hardened_detect_reg(pid: ProcessId) -> RegisterId {
    RegisterId(DETECT_BASE + pid.0 as u64)
}

fn backoff_reg(pid: ProcessId) -> RegisterId {
    RegisterId(BACKOFF_BASE + pid.0 as u64 % 16)
}

/// `steps` reads of the process's backoff scratch register, then `then`.
fn backoff(pid: ProcessId, steps: u64, then: impl FnOnce() -> Step + 'static) -> Step {
    if steps == 0 {
        then()
    } else {
        read(backoff_reg(pid), move |_| backoff(pid, steps - 1, then))
    }
}

/// Responds with `resp`, publishing the detection count first iff any
/// fault was detected (so fault-free invocations respond exactly like
/// their unhardened twins).
fn deliver(
    pid: ProcessId,
    detections: u64,
    resp: Value,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    if detections == 0 {
        k(resp)
    } else {
        swap(
            hardened_detect_reg(pid),
            Value::from(detections as i64),
            move |_| k(resp),
        )
    }
}

/// Seals a payload with its structural checksum.
fn seal(payload: Value) -> Value {
    let fp = payload.fingerprint();
    Value::tuple([payload, Value::from(fp)])
}

/// Validates and unwraps a sealed payload; `None` means corruption.
fn unseal(v: &Value) -> Option<Value> {
    let items = v.as_tuple()?;
    if items.len() != 2 {
        return None;
    }
    let fp = items[1].as_int()?;
    if fp != i128::from(items[0].fingerprint()) {
        return None;
    }
    Some(items[0].clone())
}

// ---- checked batch helpers (shared by both hardened trees) --------------
//
// The unhardened trees use `expect` on batch structure — a corrupted
// register would panic the whole process. The hardened twins only ever
// look inside payloads that already passed the checksum, but stay
// panic-free anyway: structure checks return `Option` and a malformed
// batch counts as a detection.

fn entry(p: ProcessId, op: &Value) -> Value {
    Value::tuple([Value::Pid(p), op.clone()])
}

fn entry_pid(e: &Value) -> Option<ProcessId> {
    e.index(0).and_then(Value::as_pid)
}

fn well_formed(batch: &Value) -> bool {
    batch.as_tuple().is_some_and(|es| {
        es.iter()
            .all(|e| e.len() == Some(2) && entry_pid(e).is_some())
    })
}

/// Unseals a batch register, additionally requiring a well-formed batch.
fn unseal_batch(v: &Value) -> Option<Value> {
    unseal(v).filter(well_formed)
}

fn contains(batch: &Value, p: ProcessId) -> bool {
    batch
        .as_tuple()
        .is_some_and(|es| es.iter().any(|e| entry_pid(e) == Some(p)))
}

/// Union of two well-formed batches, deduplicated and sorted by pid.
fn union(a: &Value, b: &Value) -> Value {
    let mut entries: Vec<Value> = a.as_tuple().unwrap_or(&[]).to_vec();
    for e in b.as_tuple().unwrap_or(&[]) {
        if !entries.iter().any(|x| entry_pid(x) == entry_pid(e)) {
            entries.push(e.clone());
        }
    }
    entries.sort_by_key(|e| entry_pid(e).unwrap_or(ProcessId(usize::MAX)));
    Value::tuple(entries)
}

/// Appends to `log` every entry of `batch` not already present, in
/// ascending pid order (the existing prefix is preserved).
fn extend_log(log: &Value, batch: &Value) -> Value {
    let mut entries = log.as_tuple().unwrap_or(&[]).to_vec();
    let mut fresh: Vec<Value> = batch
        .as_tuple()
        .unwrap_or(&[])
        .iter()
        .filter(|e| entry_pid(e).is_some_and(|p| !contains(log, p)))
        .cloned()
        .collect();
    fresh.sort_by_key(|e| entry_pid(e).unwrap_or(ProcessId(usize::MAX)));
    entries.extend(fresh);
    Value::tuple(entries)
}

/// Replays the log prefix up to `p`'s entry through the sequential spec;
/// `None` if `p`'s entry is missing (only reachable under corruption).
fn replay_response(spec: &dyn ObjectSpec, log: &Value, p: ProcessId) -> Option<Value> {
    let entries = log.as_tuple()?;
    let upto = entries.iter().position(|e| entry_pid(e) == Some(p))?;
    let ops: Vec<Value> = entries[..=upto]
        .iter()
        .map(|e| e.index(1).cloned().unwrap_or(Value::Unit))
        .collect();
    let (_, resps) = apply_all(spec, &ops);
    resps.into_iter().next_back()
}

fn leaf_slots(n: usize) -> u64 {
    (n.max(1) as u64).next_power_of_two()
}

fn subtree_nonempty(v: u64, n: usize) -> bool {
    let slots = leaf_slots(n);
    let mut low = v;
    while low < slots {
        low *= 2;
    }
    (low - slots) < n as u64
}

// ---- hardened direct LL/SC ----------------------------------------------

/// The register holding the sealed object state (same slot as
/// [`crate::DirectLlSc`]).
const STATE_REG: RegisterId = RegisterId(0);

fn encode_state(state: Value, epoch: i128) -> Value {
    seal(Value::tuple([state, Value::from(epoch)]))
}

fn decode_state(v: &Value) -> Option<(Value, i128)> {
    let cell = unseal(v)?;
    let items = cell.as_tuple()?;
    if items.len() != 2 {
        return None;
    }
    let epoch = items[1].as_int()?;
    Some((items[0].clone(), epoch))
}

/// Hardened [`DirectLlSc`](crate::DirectLlSc): the single-register
/// optimistic LL/SC loop over `(state, epoch)` sealed with a
/// [`Value::fingerprint`] checksum. A failed SC is diagnosed for free from
/// the epoch the SC already returned; corruption is recovered by
/// restarting from the initial state. Contention-free cost stays exactly
/// 2 shared operations.
pub struct HardenedDirectLlSc {
    spec: Arc<dyn ObjectSpec>,
}

impl HardenedDirectLlSc {
    /// Creates the hardened direct implementation of `spec`.
    pub fn new(spec: Arc<dyn ObjectSpec>) -> Self {
        HardenedDirectLlSc { spec }
    }
}

impl fmt::Debug for HardenedDirectLlSc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HardenedDirectLlSc")
            .field("spec", &self.spec.name())
            .finish()
    }
}

impl ObjectImplementation for HardenedDirectLlSc {
    fn name(&self) -> String {
        format!("hardened-direct-llsc[{}]", self.spec.name())
    }

    fn initial_memory(&self, _n: usize) -> Vec<(RegisterId, Value)> {
        vec![(STATE_REG, encode_state(self.spec.initial(), 0))]
    }

    fn invoke(
        &self,
        pid: ProcessId,
        _n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        direct_attempt(Arc::clone(&self.spec), pid, op, 0, k)
    }

    fn is_multi_use(&self) -> bool {
        true
    }
}

fn direct_attempt(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    op: Value,
    detections: u64,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    ll(STATE_REG, move |cur| {
        // A state cell that does not checksum is corruption: recover from
        // the initial state (our SC then repairs the register).
        let (state, epoch, detections) = match decode_state(&cur) {
            Some((state, epoch)) => (state, epoch, detections),
            None => (spec.initial(), 0, detections + 1),
        };
        let (next, resp) = spec.apply(&state, &op);
        sc(STATE_REG, encode_state(next, epoch + 1), move |ok, obs| {
            if ok {
                deliver(pid, detections, resp, k)
            } else {
                // Free diagnosis: a fault-free failure always observes a
                // strictly larger epoch (every successful SC after our LL
                // increments it). Our own epoch ⇒ spurious; undecodable or
                // smaller ⇒ corruption.
                let legit = decode_state(&obs).is_some_and(|(_, e)| e > epoch);
                if legit {
                    direct_attempt(spec, pid, op, detections, k)
                } else {
                    let d = detections + 1;
                    backoff(pid, d.min(BACKOFF_CAP), move || {
                        direct_attempt(spec, pid, op, d, k)
                    })
                }
            }
        })
    })
}

// ---- hardened combining tree --------------------------------------------

/// Tree node registers (same slots as [`crate::CombiningTreeUniversal`]):
/// `COMBINING_BASE + heap_index`, root/log at heap index 1.
const COMBINING_BASE: u64 = 2000;

fn combining_reg(heap_index: u64) -> RegisterId {
    RegisterId(COMBINING_BASE + heap_index)
}

/// Hardened [`CombiningTreeUniversal`](crate::CombiningTreeUniversal):
/// every node batch is sealed with its checksum, a corrupted node is
/// treated as empty and repaired by the next SC, and failed SCs are
/// diagnosed for free from the observed batch (fault-free batches only
/// grow, so an unchanged batch means the failure was spurious). Solo cost
/// stays `2·(⌈log₂ n⌉ + 1)`.
pub struct HardenedCombiningTreeUniversal {
    spec: Arc<dyn ObjectSpec>,
}

impl HardenedCombiningTreeUniversal {
    /// Creates the hardened construction instantiated with `spec`.
    pub fn new(spec: Arc<dyn ObjectSpec>) -> Self {
        HardenedCombiningTreeUniversal { spec }
    }

    fn path(p: ProcessId, n: usize) -> Vec<u64> {
        let mut node = (leaf_slots(n) + p.0 as u64) / 2;
        let mut path = Vec::new();
        while node >= 1 {
            path.push(node);
            node /= 2;
        }
        if path.is_empty() {
            path.push(1);
        }
        path
    }
}

impl fmt::Debug for HardenedCombiningTreeUniversal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HardenedCombiningTreeUniversal")
            .field("spec", &self.spec.name())
            .finish()
    }
}

impl ObjectImplementation for HardenedCombiningTreeUniversal {
    fn name(&self) -> String {
        format!("hardened-combining-tree-llsc[{}]", self.spec.name())
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        let slots = leaf_slots(n);
        (1..slots * 2)
            .map(|i| (combining_reg(i), seal(Value::empty_tuple())))
            .collect()
    }

    fn invoke(
        &self,
        pid: ProcessId,
        n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        let spec = Arc::clone(&self.spec);
        let path = Self::path(pid, n);
        let batch = Value::tuple([entry(pid, &op)]);
        combining_climb(spec, pid, path, 0, batch, 0, k)
    }
}

fn combining_climb(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    path: Vec<u64>,
    level: usize,
    batch: Value,
    detections: u64,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    let node = path[level];
    let is_root = node == 1;
    ll(combining_reg(node), move |cur| {
        // A node that does not checksum is corruption: treat it as empty
        // (losing parked contributions is detected, never absorbed as
        // garbage) and let our SC repair the register.
        let (cur_batch, detections) = match unseal_batch(&cur) {
            Some(b) => (b, detections),
            None => (Value::empty_tuple(), detections + 1),
        };
        if is_root {
            if contains(&cur_batch, pid) {
                // Helped: my op is already in the log.
                let resp = replay_response(spec.as_ref(), &cur_batch, pid).unwrap_or(Value::Unit);
                return deliver(pid, detections, resp, k);
            }
            let new_log = extend_log(&cur_batch, &batch);
            sc(
                combining_reg(node),
                seal(new_log.clone()),
                move |ok, obs| {
                    if ok {
                        let resp =
                            replay_response(spec.as_ref(), &new_log, pid).unwrap_or(Value::Unit);
                        deliver(pid, detections, resp, k)
                    } else {
                        // Fault-free failure: someone extended the log, so
                        // the observed batch differs from our basis.
                        let legit = unseal_batch(&obs).is_some_and(|b| b != cur_batch);
                        if legit {
                            combining_climb(spec, pid, path, level, batch, detections, k)
                        } else {
                            let d = detections + 1;
                            backoff(pid, d.min(BACKOFF_CAP), move || {
                                combining_climb(spec, pid, path, level, batch, d, k)
                            })
                        }
                    }
                },
            )
        } else {
            if contains(&cur_batch, pid) {
                let carried = union(&cur_batch, &batch);
                return combining_climb(spec, pid, path, level + 1, carried, detections, k);
            }
            let merged = union(&cur_batch, &batch);
            sc(combining_reg(node), seal(merged.clone()), move |ok, obs| {
                if ok {
                    combining_climb(spec, pid, path, level + 1, merged, detections, k)
                } else {
                    let legit = unseal_batch(&obs).is_some_and(|b| b != cur_batch);
                    if legit {
                        combining_climb(spec, pid, path, level, batch, detections, k)
                    } else {
                        let d = detections + 1;
                        backoff(pid, d.min(BACKOFF_CAP), move || {
                            combining_climb(spec, pid, path, level, batch, d, k)
                        })
                    }
                }
            })
        }
    })
}

// ---- hardened ADT group-update tree -------------------------------------

/// Registers (same slots as [`crate::AdtTreeUniversal`]): `ADT_BASE + 0`
/// is the log, `ADT_BASE + heap_index` the meeting points.
const ADT_BASE: u64 = 3000;

fn adt_log_reg() -> RegisterId {
    RegisterId(ADT_BASE)
}

fn adt_node_reg(heap_index: u64) -> RegisterId {
    RegisterId(ADT_BASE + heap_index)
}

/// Hardened [`AdtTreeUniversal`](crate::AdtTreeUniversal): parked batches
/// and the final log are sealed with checksums, so a meeting point or log
/// corrupted in place is detected on receipt instead of being absorbed
/// into the linearisation. A leader that detects a corrupted park climbs
/// on with its own group only — degraded-safe: the orphaned sibling group
/// stalls (an honestly reported budget exhaustion) rather than receive
/// wrong responses; a follower that reads a corrupted log responds `Unit`
/// after publishing the detection.
pub struct HardenedAdtTreeUniversal {
    spec: Arc<dyn ObjectSpec>,
}

impl HardenedAdtTreeUniversal {
    /// Creates the hardened construction instantiated with `spec`.
    pub fn new(spec: Arc<dyn ObjectSpec>) -> Self {
        HardenedAdtTreeUniversal { spec }
    }
}

impl fmt::Debug for HardenedAdtTreeUniversal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HardenedAdtTreeUniversal")
            .field("spec", &self.spec.name())
            .finish()
    }
}

impl ObjectImplementation for HardenedAdtTreeUniversal {
    fn name(&self) -> String {
        format!("hardened-adt-group-update[{}]", self.spec.name())
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        // The Unit marker still means "nobody parked here yet", so the log
        // and meeting points start unsealed, exactly like the original.
        let slots = leaf_slots(n);
        (0..slots).map(|i| (adt_node_reg(i), Value::Unit)).collect()
    }

    fn invoke(
        &self,
        pid: ProcessId,
        n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        let spec = Arc::clone(&self.spec);
        let leaf = leaf_slots(n) + pid.0 as u64;
        let batch = Value::tuple([entry(pid, &op)]);
        adt_climb(spec, pid, n, leaf, batch, 0, k)
    }
}

fn adt_climb(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    n: usize,
    child: u64,
    batch: Value,
    detections: u64,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    if child == 1 {
        // Final leader: install the sealed log with a single swap.
        return swap(adt_log_reg(), seal(batch.clone()), move |_| {
            let resp = replay_response(spec.as_ref(), &batch, pid).unwrap_or(Value::Unit);
            deliver(pid, detections, resp, k)
        });
    }
    let v = child / 2;
    let sibling = child ^ 1;
    if !subtree_nonempty(sibling, n) {
        return adt_climb(spec, pid, n, v, batch, detections, k);
    }
    swap(adt_node_reg(v), seal(batch.clone()), move |received| {
        if received.is_unit() {
            // First at the meeting point: the sealed batch is parked for
            // the sibling leader; follow the log from here on.
            adt_follow(spec, pid, detections, k)
        } else {
            match unseal_batch(&received) {
                Some(parked) => adt_climb(spec, pid, n, v, union(&batch, &parked), detections, k),
                None => {
                    // The parked payload was corrupted in place: the
                    // sibling group is unrecoverable. Climb with our own
                    // group only — never absorb garbage into the log.
                    let d = detections + 1;
                    backoff(pid, d.min(BACKOFF_CAP), move || {
                        adt_climb(spec, pid, n, v, batch, d, k)
                    })
                }
            }
        }
    })
}

fn adt_follow(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    detections: u64,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    read(adt_log_reg(), move |log| {
        if log.is_unit() {
            return adt_follow(spec, pid, detections, k);
        }
        match unseal_batch(&log) {
            Some(entries) if contains(&entries, pid) => {
                let resp = replay_response(spec.as_ref(), &entries, pid).unwrap_or(Value::Unit);
                deliver(pid, detections, resp, k)
            }
            // A log that omits us means our park was lost to corruption
            // upstream; keep polling (the run ends as an honestly reported
            // budget exhaustion, never a wrong answer).
            Some(_) => adt_follow(spec, pid, detections, k),
            None => {
                // Corrupted log: a follower has nothing to replay. Publish
                // the detection and respond Unit (detected-wrong).
                deliver(pid, detections + 1, Value::Unit, k)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureConfig, ScheduleKind};
    use llsc_objects::FetchIncrement;
    use llsc_shmem::dsl::done;
    use llsc_shmem::{
        Executor, ExecutorConfig, FaultPlan, FnAlgorithm, RoundRobinScheduler, ZeroTosses,
    };

    fn run_faulty(
        imp: Arc<dyn ObjectImplementation>,
        n: usize,
        plan: FaultPlan,
        max_steps: u64,
    ) -> Executor {
        let mem = imp.initial_memory(n);
        let alg = FnAlgorithm::new("fi-once", move |pid, n| {
            let imp = Arc::clone(&imp);
            imp.invoke(pid, n, FetchIncrement::op(), Box::new(done))
                .into_program()
        })
        .with_initial_memory(mem);
        let mut e = Executor::new(&alg, n, Arc::new(ZeroTosses), ExecutorConfig::default());
        e.set_fault_plan(plan);
        let _ = e.drive(&mut RoundRobinScheduler::new(), max_steps);
        e
    }

    #[test]
    fn state_cells_round_trip_and_reject_tampering() {
        let cell = encode_state(Value::from(5i64), 3);
        assert_eq!(decode_state(&cell), Some((Value::from(5i64), 3)));
        // Tampered payload: checksum mismatch.
        let items = cell.as_tuple().unwrap();
        let forged = Value::tuple([
            Value::tuple([Value::from(6i64), Value::from(3i64)]),
            items[1].clone(),
        ]);
        assert_eq!(decode_state(&forged), None);
        assert_eq!(decode_state(&Value::from(5i64)), None);
        assert_eq!(decode_state(&Value::Unit), None);
    }

    #[test]
    fn sealed_batches_reject_malformed_payloads() {
        let good = seal(Value::tuple([entry(ProcessId(1), &Value::from(0i64))]));
        assert!(unseal_batch(&good).is_some());
        // A sealed non-batch checksums but fails the structure check.
        let non_batch = seal(Value::from(9i64));
        assert_eq!(unseal_batch(&non_batch), None);
        let bad_entry = seal(Value::tuple([Value::from(1i64)]));
        assert_eq!(unseal_batch(&bad_entry), None);
    }

    #[test]
    fn hardening_is_zero_cost_without_faults() {
        // At fault rate 0 each hardened twin's measured shared-access
        // counts exactly match the unhardened original's.
        let spec = Arc::new(FetchIncrement::new(64));
        let pairs: Vec<(Box<dyn ObjectImplementation>, Box<dyn ObjectImplementation>)> = vec![
            (
                Box::new(crate::DirectLlSc::new(spec.clone())),
                Box::new(HardenedDirectLlSc::new(spec.clone())),
            ),
            (
                Box::new(crate::CombiningTreeUniversal::new(spec.clone())),
                Box::new(HardenedCombiningTreeUniversal::new(spec.clone())),
            ),
            (
                Box::new(crate::AdtTreeUniversal::new(spec.clone())),
                Box::new(HardenedAdtTreeUniversal::new(spec.clone())),
            ),
        ];
        // Fair schedules only (the ADT followers poll the log).
        for kind in [
            ScheduleKind::RoundRobin,
            ScheduleKind::RandomInterleave { seed: 5 },
            ScheduleKind::Adversary,
        ] {
            for n in [1, 2, 5, 8] {
                let ops = vec![FetchIncrement::op(); n];
                for (plain, hard) in &pairs {
                    let a = measure(
                        plain.as_ref(),
                        spec.as_ref(),
                        n,
                        &ops,
                        kind,
                        &MeasureConfig::default(),
                    )
                    .unwrap();
                    let b = measure(
                        hard.as_ref(),
                        spec.as_ref(),
                        n,
                        &ops,
                        kind,
                        &MeasureConfig::default(),
                    )
                    .unwrap();
                    assert!(b.linearizable, "{} {kind:?} n={n}", hard.name());
                    assert_eq!(
                        a.max_ops,
                        b.max_ops,
                        "{} vs {} {kind:?} n={n}",
                        plain.name(),
                        hard.name()
                    );
                    assert_eq!(a.total_ops, b.total_ops, "{} {kind:?} n={n}", hard.name());
                }
            }
        }
    }

    #[test]
    fn direct_recovers_from_spurious_sc() {
        // Suppress the first qualifying SC: the victim observes its own
        // epoch, diagnoses the failure as spurious, backs off, retries.
        let spec = Arc::new(FetchIncrement::new(16));
        let e = run_faulty(
            Arc::new(HardenedDirectLlSc::new(spec)),
            3,
            FaultPlan::at([1], [], 5),
            1_000_000,
        );
        assert!(e.all_terminated());
        assert_eq!(e.fault_stats().spurious_sc, 1);
        // Responses are still a permutation of 0..3: recovered, not wrong.
        let mut got: Vec<i128> = llsc_shmem::ProcessId::all(3)
            .map(|p| e.verdict(p).unwrap().as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        let detections: i128 = llsc_shmem::ProcessId::all(3)
            .map(|p| {
                e.memory()
                    .peek(hardened_detect_reg(p))
                    .as_int()
                    .unwrap_or(0)
            })
            .sum();
        assert!(detections >= 1, "the victim published its detection");
    }

    #[test]
    fn direct_recovers_from_state_corruption() {
        // Corrupt the state register before the first LL: the reader sees
        // a cell that fails its checksum, recovers from the initial state,
        // and the run still produces a permutation of responses.
        let spec = Arc::new(FetchIncrement::new(16));
        let e = run_faulty(
            Arc::new(HardenedDirectLlSc::new(spec)),
            3,
            FaultPlan::at([], [(0, false)], 23),
            1_000_000,
        );
        assert!(e.all_terminated());
        assert_eq!(e.fault_stats().corruptions, 1);
        let mut got: Vec<i128> = llsc_shmem::ProcessId::all(3)
            .map(|p| e.verdict(p).unwrap().as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2], "recovered from the corrupted cell");
        let detections: i128 = llsc_shmem::ProcessId::all(3)
            .map(|p| {
                e.memory()
                    .peek(hardened_detect_reg(p))
                    .as_int()
                    .unwrap_or(0)
            })
            .sum();
        assert!(detections >= 1);
    }

    #[test]
    fn adt_never_absorbs_a_corrupted_park() {
        // Corrupt a meeting point between the park and its pickup: the
        // second arrival must reject the payload. The run either completes
        // with detections published or stalls honestly — it never returns
        // a silently-wrong full set of responses.
        for threshold in 0..6u64 {
            let spec = Arc::new(FetchIncrement::new(16));
            let e = run_faulty(
                Arc::new(HardenedAdtTreeUniversal::new(spec)),
                4,
                FaultPlan::at([], [(threshold, false)], 31),
                200_000,
            );
            if e.fault_stats().corruptions == 0 {
                continue;
            }
            let detections: i128 = llsc_shmem::ProcessId::all(4)
                .map(|p| {
                    e.memory()
                        .peek(hardened_detect_reg(p))
                        .as_int()
                        .unwrap_or(0)
                })
                .sum();
            if e.all_terminated() {
                let mut got: Vec<i128> = llsc_shmem::ProcessId::all(4)
                    .map(|p| e.verdict(p).unwrap().as_int().unwrap_or(-1))
                    .collect();
                got.sort_unstable();
                assert!(
                    got == vec![0, 1, 2, 3] || detections >= 1,
                    "threshold={threshold}: wrong answers must come flagged: \
                     {got:?} detections={detections}"
                );
            }
            // Non-termination is the honest degraded mode (orphaned
            // followers poll a log that cannot include them).
        }
    }

    #[test]
    fn combining_tree_repairs_a_corrupted_node() {
        for threshold in 0..6u64 {
            let spec = Arc::new(FetchIncrement::new(16));
            let e = run_faulty(
                Arc::new(HardenedCombiningTreeUniversal::new(spec)),
                4,
                FaultPlan::at([], [(threshold, false)], 41),
                200_000,
            );
            if e.fault_stats().corruptions == 0 {
                continue;
            }
            let detections: i128 = llsc_shmem::ProcessId::all(4)
                .map(|p| {
                    e.memory()
                        .peek(hardened_detect_reg(p))
                        .as_int()
                        .unwrap_or(0)
                })
                .sum();
            if e.all_terminated() {
                let mut got: Vec<i128> = llsc_shmem::ProcessId::all(4)
                    .map(|p| e.verdict(p).unwrap().as_int().unwrap_or(-1))
                    .collect();
                got.sort_unstable();
                assert!(
                    got == vec![0, 1, 2, 3] || detections >= 1,
                    "threshold={threshold}: wrong answers must come flagged: \
                     {got:?} detections={detections}"
                );
            }
        }
    }

    #[test]
    fn names_mention_hardening_and_spec() {
        let spec = Arc::new(FetchIncrement::new(8));
        assert_eq!(
            HardenedDirectLlSc::new(spec.clone()).name(),
            "hardened-direct-llsc[fetch&increment(k=8)]"
        );
        assert!(HardenedCombiningTreeUniversal::new(spec.clone())
            .name()
            .starts_with("hardened-combining-tree-llsc["));
        assert!(HardenedAdtTreeUniversal::new(spec.clone())
            .name()
            .starts_with("hardened-adt-group-update["));
        assert!(HardenedDirectLlSc::new(spec.clone()).is_multi_use());
        assert!(!HardenedAdtTreeUniversal::new(spec).is_multi_use());
    }
}
