//! A Herlihy-style announce-and-help universal construction — the `O(n)`
//! oblivious baseline.
//!
//! This is the classic recipe behind the paper's remark that "if we rule
//! out constructions that make impractical assumptions on the size of
//! registers, O(n) is the best known upper bound":
//!
//! 1. each process *announces* its operation by swapping it into a
//!    per-process announce register;
//! 2. it then repeatedly tries to extend the shared *log* register (which
//!    holds the entire linearisation order — registers are unbounded) with
//!    every announced-but-unapplied operation it can see, via LL/SC;
//! 3. it returns once its own operation appears in the log, replaying the
//!    log prefix through the sequential specification to compute its
//!    response.
//!
//! Helping bounds the retries: if a process's SC fails twice after its
//! announce, the second winner must have scanned the announce registers
//! after the announce and therefore included it, so **at most three LL/SC
//! attempts** are ever needed. Each attempt scans all `n` announce
//! registers, so the worst-case shared-access cost is `Θ(n)` — which is
//! exactly what experiment E8/E9 measures against the `O(log n)` tree.
//!
//! The construction is *oblivious*: it touches the instantiated type only
//! through [`ObjectSpec::apply`].

use crate::implementation::ObjectImplementation;
use llsc_objects::{apply_all, ObjectSpec};
use llsc_shmem::dsl::{ll, read, sc, swap, Step};
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt;
use std::sync::Arc;

/// The register holding the operation log (the linearisation order).
const LOG_REG: RegisterId = RegisterId(1);
/// Announce registers: `ANNOUNCE_BASE + p`.
const ANNOUNCE_BASE: u64 = 1000;

fn announce_reg(p: ProcessId) -> RegisterId {
    RegisterId(ANNOUNCE_BASE + p.0 as u64)
}

/// An entry `(pid, op)` as stored in announce registers and the log.
fn entry(p: ProcessId, op: &Value) -> Value {
    Value::tuple([Value::Pid(p), op.clone()])
}

fn entry_pid(e: &Value) -> ProcessId {
    e.index(0).and_then(Value::as_pid).expect("entry pid")
}

fn entry_op(e: &Value) -> &Value {
    e.index(1).expect("entry op")
}

fn log_contains(log: &Value, p: ProcessId) -> bool {
    log.as_tuple()
        .expect("log tuple")
        .iter()
        .any(|e| entry_pid(e) == p)
}

/// Computes `p`'s response by replaying the log prefix up to and including
/// `p`'s entry.
fn replay_response(spec: &dyn ObjectSpec, log: &Value, p: ProcessId) -> Value {
    let entries = log.as_tuple().expect("log tuple");
    let upto = entries
        .iter()
        .position(|e| entry_pid(e) == p)
        .expect("p's entry is in the log");
    let ops: Vec<Value> = entries[..=upto]
        .iter()
        .map(|e| entry_op(e).clone())
        .collect();
    let (_, resps) = apply_all(spec, &ops);
    resps.into_iter().next_back().expect("non-empty prefix")
}

/// The Herlihy-style `Θ(n)` oblivious universal construction (single-use).
///
/// # Examples
///
/// ```
/// use llsc_universal::{HerlihyUniversal, measure, MeasureConfig, ScheduleKind};
/// use llsc_objects::FetchIncrement;
/// use std::sync::Arc;
///
/// let spec = Arc::new(FetchIncrement::new(16));
/// let imp = HerlihyUniversal::new(spec.clone());
/// let ops = vec![FetchIncrement::op(); 4];
/// let r = measure(&imp, spec.as_ref(), 4, &ops, ScheduleKind::Adversary, &MeasureConfig::default())
///     .expect("the adversary run completes within the default budgets");
/// assert!(r.linearizable);
/// ```
pub struct HerlihyUniversal {
    spec: Arc<dyn ObjectSpec>,
}

impl HerlihyUniversal {
    /// Creates the construction instantiated with `spec`.
    pub fn new(spec: Arc<dyn ObjectSpec>) -> Self {
        HerlihyUniversal { spec }
    }
}

impl fmt::Debug for HerlihyUniversal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HerlihyUniversal")
            .field("spec", &self.spec.name())
            .finish()
    }
}

impl ObjectImplementation for HerlihyUniversal {
    fn name(&self) -> String {
        format!("herlihy-announce[{}]", self.spec.name())
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        let mut mem = vec![(LOG_REG, Value::empty_tuple())];
        mem.extend(ProcessId::all(n).map(|p| (announce_reg(p), Value::Unit)));
        mem
    }

    fn invoke(
        &self,
        pid: ProcessId,
        n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        let spec = Arc::clone(&self.spec);
        // Step 1: announce.
        swap(announce_reg(pid), entry(pid, &op), move |_| {
            attempt(spec, pid, n, k)
        })
    }
}

/// One LL / scan / SC attempt, retried until `pid`'s entry is in the log.
fn attempt(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    n: usize,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    ll(LOG_REG, move |log| {
        if log_contains(&log, pid) {
            return k(replay_response(spec.as_ref(), &log, pid));
        }
        // Scan every announce register, collecting unapplied entries.
        scan(spec, pid, n, log, 0, Vec::new(), k)
    })
}

/// Reads announce registers `next..n`, then attempts the SC.
fn scan(
    spec: Arc<dyn ObjectSpec>,
    pid: ProcessId,
    n: usize,
    log: Value,
    next: usize,
    mut gathered: Vec<Value>,
    k: Box<dyn FnOnce(Value) -> Step>,
) -> Step {
    if next == n {
        let mut entries = log.as_tuple().expect("log tuple").to_vec();
        entries.extend(gathered);
        let new_log = Value::tuple(entries);
        return sc(LOG_REG, new_log.clone(), move |ok, _| {
            if ok {
                k(replay_response(spec.as_ref(), &new_log, pid))
            } else {
                attempt(spec, pid, n, k)
            }
        });
    }
    read(announce_reg(ProcessId(next)), move |ann| {
        if !ann.is_unit() && !log_contains(&log, entry_pid(&ann)) {
            gathered.push(ann);
        }
        scan(spec, pid, n, log, next + 1, gathered, k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureConfig, ScheduleKind};
    use llsc_objects::{FetchIncrement, Queue};

    fn fi(n: usize, kind: ScheduleKind) -> crate::measure::MeasureResult {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp = HerlihyUniversal::new(spec.clone());
        let ops = vec![FetchIncrement::op(); n];
        measure(
            &imp,
            spec.as_ref(),
            n,
            &ops,
            kind,
            &MeasureConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn linearizable_under_all_schedules() {
        for kind in [
            ScheduleKind::Sequential,
            ScheduleKind::RoundRobin,
            ScheduleKind::RandomInterleave { seed: 5 },
            ScheduleKind::Adversary,
        ] {
            let r = fi(6, kind);
            assert!(r.linearizable, "{kind:?}");
            // Every response is a distinct value in 0..6.
            let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..6).collect::<Vec<i128>>(), "{kind:?}");
        }
    }

    #[test]
    fn cost_is_linear_in_n() {
        // Each attempt scans n announce registers, so max_ops grows
        // linearly: between n and ~3(n+2)+1.
        for n in [2, 4, 8, 16, 32] {
            let r = fi(n, ScheduleKind::Adversary);
            assert!(
                r.max_ops >= n as u64,
                "n={n}: max_ops={} below the scan cost",
                r.max_ops
            );
            let ceiling = 3 * (n as u64 + 2) + 1;
            assert!(
                r.max_ops <= ceiling,
                "n={n}: max_ops={} exceeds the 3-attempt helping bound {ceiling}",
                r.max_ops
            );
        }
    }

    #[test]
    fn helping_bounds_attempts_to_three() {
        // Even under the adversary schedule, nobody exceeds
        // announce + 3 * (LL + n reads + SC).
        let n = 24;
        let r = fi(n, ScheduleKind::Adversary);
        assert!(r.max_ops <= 1 + 3 * (n as u64 + 2));
    }

    #[test]
    fn works_for_queues_with_initial_items() {
        let spec = Arc::new(Queue::with_numbered_items(5));
        let imp = HerlihyUniversal::new(spec.clone());
        let ops = vec![Queue::dequeue_op(); 5];
        let r = measure(
            &imp,
            spec.as_ref(),
            5,
            &ops,
            ScheduleKind::RoundRobin,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.linearizable);
        let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_process_still_costs_linear_scan() {
        // Obliviousness has a price even solo: announce + LL + scan + SC.
        let r = fi(1, ScheduleKind::Sequential);
        assert_eq!(r.max_ops, 4);
    }

    #[test]
    fn name_mentions_spec() {
        let imp = HerlihyUniversal::new(Arc::new(FetchIncrement::new(8)));
        assert!(imp.name().contains("herlihy-announce"));
        assert!(!imp.is_multi_use());
    }
}
