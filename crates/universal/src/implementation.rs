//! The implementation interface: `n`-process shared-object implementations
//! over LL/SC shared memory.

use llsc_shmem::dsl::Step;
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt::Debug;

/// An `n`-process implementation of a shared object over the LL/SC shared
/// memory.
///
/// An implementation decides a register layout (via
/// [`ObjectImplementation::initial_memory`]) and, for each process,
/// produces the program fragment that applies one operation. The fragment
/// is written in continuation-passing style: `invoke` receives the
/// continuation `k` to run with the operation's response, so callers can
/// chain operations (`k`-use) or post-process responses (the wakeup
/// reductions do exactly that).
///
/// The *shared-access time complexity* of an implementation — the quantity
/// the paper's lower bound is about — is the number of shared-memory
/// operations the fragment performs, measured by
/// [`crate::measure`].
pub trait ObjectImplementation: Debug + Send + Sync {
    /// A short human-readable name, e.g. `"adt-tree"`.
    fn name(&self) -> String;

    /// The initial shared-memory contents for an `n`-process instance.
    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)>;

    /// The program fragment with which process `pid` (of `n`) applies `op`;
    /// the fragment must eventually call `k` with the operation's response.
    fn invoke(
        &self,
        pid: ProcessId,
        n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step;

    /// Whether this implementation supports more than one operation per
    /// process. Single-use implementations (the paper's lower-bound
    /// setting) may refuse chained invocations.
    fn is_multi_use(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::done;

    #[derive(Debug)]
    struct Echo;

    impl ObjectImplementation for Echo {
        fn name(&self) -> String {
            "echo".into()
        }
        fn initial_memory(&self, _n: usize) -> Vec<(RegisterId, Value)> {
            vec![]
        }
        fn invoke(
            &self,
            _pid: ProcessId,
            _n: usize,
            op: Value,
            k: Box<dyn FnOnce(Value) -> Step>,
        ) -> Step {
            k(op)
        }
    }

    #[test]
    fn invoke_is_cps_composable() {
        use llsc_shmem::{Action, Feedback};
        let echo = Echo;
        // Chain two invocations; return the second response.
        let step = echo.invoke(
            ProcessId(0),
            1,
            Value::from(1i64),
            Box::new(|r1| {
                assert_eq!(r1, Value::from(1i64));
                Echo.invoke(ProcessId(0), 1, Value::from(2i64), Box::new(done))
            }),
        );
        let mut prog = step.into_program();
        assert_eq!(
            prog.next(Feedback::Start),
            Action::Return(Value::from(2i64))
        );
    }

    #[test]
    fn default_is_single_use() {
        assert!(!Echo.is_multi_use());
    }
}
