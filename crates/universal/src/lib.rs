//! # llsc-universal: upper bounds and the obliviousness boundary
//!
//! Jayanti PODC'98's lower bound says: any implementation produced by an
//! *oblivious* universal construction costs Ω(log n) shared-memory
//! operations per object operation. This crate supplies the other side of
//! that boundary:
//!
//! * [`AdtTreeUniversal`] — an oblivious combining-tree construction in the
//!   style of Afek–Dauber–Touitou's Group Update, whose measured cost is
//!   `Θ(log n)` under the paper's own adversary: the lower bound is
//!   **tight**.
//! * [`HerlihyUniversal`] — an oblivious announce-and-help construction at
//!   `Θ(n)`, the classic baseline the paper's open-problems section
//!   discusses.
//! * [`DirectLlSc`] — the non-oblivious escape hatch: one register plus an
//!   optimistic LL/SC retry loop gives **constant** contention-free cost
//!   for any type, which is exactly why the paper concludes that
//!   sublogarithmic implementations "must necessarily exploit the semantics
//!   of the type being implemented".
//! * [`HardenedDirectLlSc`], [`HardenedCombiningTreeUniversal`] and
//!   [`HardenedAdtTreeUniversal`] — fault-hardened twins of the direct
//!   loop and both trees, self-validating with epoch counters and
//!   [`llsc_shmem::Value::fingerprint`] checksums against the
//!   [`llsc_shmem::FaultPlan`] adversary's spurious SC failures and
//!   register corruption, at zero extra shared-access cost when no fault
//!   fires (experiment E16).
//! * [`MsQueue`] and [`TreiberStack`] — *structural* escape hatches: the
//!   classic pointer-based LL/SC queue and stack, rebuilt inside the
//!   model with register names as pointers. O(1) registers touched per
//!   operation regardless of data-structure size.
//!
//! All three implement [`ObjectImplementation`] and can be instantiated
//! with any [`llsc_objects::ObjectSpec`]. The [`measure`] harness runs an
//! instance under sequential, round-robin, random, or Figure-2-adversary
//! schedules, counts shared-memory operations per process (the paper's
//! complexity measure), and checks linearizability of the observed history.
//!
//! ## Example
//!
//! ```
//! use llsc_universal::{AdtTreeUniversal, HerlihyUniversal, measure, MeasureConfig, ScheduleKind};
//! use llsc_objects::FetchIncrement;
//! use std::sync::Arc;
//!
//! let spec = Arc::new(FetchIncrement::new(32));
//! let n = 16;
//! let ops = vec![FetchIncrement::op(); n];
//! let cfg = MeasureConfig::default();
//!
//! let tree = measure(&AdtTreeUniversal::new(spec.clone()), spec.as_ref(), n, &ops,
//!                    ScheduleKind::Adversary, &cfg).expect("run completes");
//! let flat = measure(&HerlihyUniversal::new(spec.clone()), spec.as_ref(), n, &ops,
//!                    ScheduleKind::Adversary, &cfg).expect("run completes");
//! assert!(tree.linearizable && flat.linearizable);
//! assert!(tree.max_ops < flat.max_ops, "log n beats n");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adt_tree;
mod combining_tree;
mod direct;
mod hardened;
mod herlihy;
mod implementation;
mod measure;
mod ms_queue;
mod multi_use;
mod treiber;

pub use adt_tree::AdtTreeUniversal;
pub use combining_tree::CombiningTreeUniversal;
pub use direct::DirectLlSc;
pub use hardened::{
    hardened_detect_reg, HardenedAdtTreeUniversal, HardenedCombiningTreeUniversal,
    HardenedDirectLlSc, BACKOFF_CAP, DETECT_BASE,
};
pub use herlihy::HerlihyUniversal;
pub use implementation::ObjectImplementation;
pub use measure::{measure, ImplAlgorithm, MeasureConfig, MeasureResult, ScheduleKind};
pub use ms_queue::MsQueue;
pub use multi_use::{measure_multi_use, MultiUseResult};
pub use treiber::TreiberStack;
