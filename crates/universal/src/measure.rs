//! The measurement harness: run an implementation under a schedule, count
//! shared-memory operations per process, and check linearizability.
//!
//! This is the executable form of the paper's complexity measure: the
//! *worst-case shared-access time complexity* of an implementation is the
//! maximum, over processes, of the number of shared-memory operations a
//! process performs to complete one operation on the implemented object —
//! [`MeasureResult::max_ops`] under the schedule that maximises it.

use crate::implementation::ObjectImplementation;
use llsc_core::{build_all_run, AdversaryConfig};
use llsc_objects::{is_linearizable, History, ObjectSpec};
use llsc_shmem::dsl::done;
use llsc_shmem::{
    Algorithm, Executor, ExecutorConfig, ProcessId, Program, RandomScheduler, RegisterId,
    RoundRobinScheduler, Run, RunError, RunEvent, Scheduler, SequentialScheduler, Value,
    ZeroTosses,
};
use std::fmt;
use std::sync::Arc;

/// Which schedule to measure under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleKind {
    /// One process at a time, to completion — the contention-free
    /// (best-case) schedule.
    Sequential,
    /// Step-by-step round-robin interleaving.
    RoundRobin,
    /// Uniformly random interleaving with a fixed seed.
    RandomInterleave {
        /// The scheduler seed.
        seed: u64,
    },
    /// The paper's Figure-2 five-phase round adversary.
    Adversary,
}

/// Limits and switches for a measurement.
#[derive(Clone, Copy, Debug)]
pub struct MeasureConfig {
    /// Maximum executor steps for the non-adversary schedules.
    pub max_steps: u64,
    /// Adversary limits (for [`ScheduleKind::Adversary`]).
    pub adversary: AdversaryConfig,
    /// Whether to run the linearizability checker (requires at most
    /// [`llsc_objects::MAX_OPS`] operations; disable for large sweeps).
    pub check_linearizability: bool,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            max_steps: 50_000_000,
            adversary: AdversaryConfig::default(),
            check_linearizability: true,
        }
    }
}

/// The outcome of one measurement.
#[derive(Clone, Debug)]
pub struct MeasureResult {
    /// The implementation's name.
    pub implementation: String,
    /// Number of processes.
    pub n: usize,
    /// Shared-memory operations performed by each process.
    pub per_process_ops: Vec<u64>,
    /// `max_p` of the above — the shared-access time complexity of this
    /// run.
    pub max_ops: u64,
    /// Sum over processes.
    pub total_ops: u64,
    /// Mean over processes.
    pub mean_ops: f64,
    /// Each process's response (indexed by process id).
    pub responses: Vec<Value>,
    /// Whether the recorded history linearizes against the specification
    /// (`true` when the check is disabled — see
    /// [`MeasureConfig::check_linearizability`] and [`MeasureResult::lin_checked`]).
    pub linearizable: bool,
    /// Whether the linearizability check actually ran.
    pub lin_checked: bool,
    /// The recorded concurrent history.
    pub history: History,
}

impl fmt::Display for MeasureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} max={} mean={:.1} total={} linearizable={}{}",
            self.implementation,
            self.n,
            self.max_ops,
            self.mean_ops,
            self.total_ops,
            self.linearizable,
            if self.lin_checked { "" } else { " (unchecked)" }
        )
    }
}

/// Adapts an implementation plus one operation per process into an
/// [`Algorithm`] whose per-process return value is the operation's
/// response.
///
/// Public so backend-generic harnesses (the simulator ⇄ hardware
/// cross-validation in `llsc-bench`) can run the same object
/// implementations through any [`llsc_shmem::ExecutionBackend`] driver.
pub struct ImplAlgorithm<'a> {
    imp: &'a dyn ObjectImplementation,
    ops: &'a [Value],
}

impl fmt::Debug for ImplAlgorithm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImplAlgorithm")
            .field("imp", &self.imp.name())
            .field("ops", &self.ops)
            .finish()
    }
}

impl<'a> ImplAlgorithm<'a> {
    /// Wraps `imp` with one operation per process (`ops[p]` is process
    /// `p`'s operation).
    pub fn new(imp: &'a dyn ObjectImplementation, ops: &'a [Value]) -> ImplAlgorithm<'a> {
        ImplAlgorithm { imp, ops }
    }
}

impl Algorithm for ImplAlgorithm<'_> {
    fn name(&self) -> &'static str {
        "object-implementation"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        let op = self.ops[pid.0].clone();
        self.imp.invoke(pid, n, op, Box::new(done)).into_program()
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        self.imp.initial_memory(n)
    }
}

/// Builds the concurrent history of a single-use run: each process's
/// operation is invoked at its first step and responds at its termination.
fn history_of(run: &Run, ops: &[Value]) -> History {
    let mut h = History::new();
    let mut ids = vec![None; run.n()];
    for ev in run.events() {
        match ev {
            RunEvent::Toss { pid, .. } | RunEvent::SharedOp { pid, .. } => {
                if ids[pid.0].is_none() {
                    ids[pid.0] = Some(h.invoke(*pid, ops[pid.0].clone()));
                }
            }
            RunEvent::Terminated { pid, value } => {
                let id = match ids[pid.0] {
                    Some(id) => id,
                    // A process that terminates without any step still
                    // logically invoked its operation.
                    None => {
                        let id = h.invoke(*pid, ops[pid.0].clone());
                        ids[pid.0] = Some(id);
                        id
                    }
                };
                h.respond(id, value.clone());
            }
        }
    }
    h
}

/// Runs `imp` with `n` processes, process `p` applying `ops[p]`, under the
/// given schedule, and measures shared-access costs.
///
/// # Errors
///
/// Returns the structured [`RunError`] when the run fails to complete
/// within the configured limits: `BudgetExhausted` when the step, round,
/// or event budget ran out, `DivergedLocalBurst` when a process spun
/// locally without bound.
///
/// # Panics
///
/// Panics if `ops.len() != n` (a caller bug, not a run outcome), or if
/// linearizability checking is enabled and the history is too large for
/// the checker.
pub fn measure(
    imp: &dyn ObjectImplementation,
    spec: &dyn ObjectSpec,
    n: usize,
    ops: &[Value],
    kind: ScheduleKind,
    cfg: &MeasureConfig,
) -> Result<MeasureResult, RunError> {
    assert_eq!(ops.len(), n, "one operation per process");
    let alg = ImplAlgorithm::new(imp, ops);

    // When linearizability checking is off, drop event/history/snapshot
    // recording: complexity sweeps over value-heavy constructions would
    // otherwise hold every operand value in memory.
    let light = !cfg.check_linearizability;
    let run: Run = match kind {
        ScheduleKind::Adversary => {
            let adv_cfg = if light {
                AdversaryConfig {
                    max_rounds: cfg.adversary.max_rounds,
                    ..AdversaryConfig::lightweight()
                }
            } else {
                cfg.adversary
            };
            let all = build_all_run(&alg, n, Arc::new(ZeroTosses), &adv_cfg)?;
            // Hitting max_rounds leaves the executor fault-free, so the
            // outcome classifies it as BudgetExhausted — exactly what the
            // caller should see for "did not complete within the limits".
            all.base.outcome.into_result()?;
            all.base.run
        }
        other => {
            let exec_cfg = ExecutorConfig {
                record_details: !light,
                ..ExecutorConfig::default()
            };
            let mut exec = Executor::new(&alg, n, Arc::new(ZeroTosses), exec_cfg);
            let mut sched: Box<dyn Scheduler> = match other {
                ScheduleKind::Sequential => Box::new(SequentialScheduler::new()),
                ScheduleKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
                ScheduleKind::RandomInterleave { seed } => Box::new(RandomScheduler::new(seed)),
                ScheduleKind::Adversary => unreachable!(),
            };
            exec.drive(sched.as_mut(), cfg.max_steps)?;
            exec.run_outcome().into_result()?;
            exec.into_run()
        }
    };

    let per_process_ops: Vec<u64> = ProcessId::all(n).map(|p| run.shared_steps(p)).collect();
    let max_ops = per_process_ops.iter().copied().max().unwrap_or(0);
    let total_ops: u64 = per_process_ops.iter().sum();
    let responses: Vec<Value> = ProcessId::all(n)
        .map(|p| run.verdict(p).cloned().expect("terminated"))
        .collect();
    let history = if run.is_detailed() {
        history_of(&run, ops)
    } else {
        History::new()
    };
    let (linearizable, lin_checked) = if cfg.check_linearizability {
        (is_linearizable(spec, &history), true)
    } else {
        (true, false)
    };

    Ok(MeasureResult {
        implementation: imp.name(),
        n,
        per_process_ops,
        max_ops,
        total_ops,
        mean_ops: if n == 0 {
            0.0
        } else {
            total_ops as f64 / n as f64
        },
        responses,
        linearizable,
        lin_checked,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectLlSc;
    use llsc_objects::FetchIncrement;

    fn setup(n: usize) -> (Arc<FetchIncrement>, DirectLlSc, Vec<Value>) {
        let spec = Arc::new(FetchIncrement::new(16));
        let imp = DirectLlSc::new(spec.clone());
        let ops = vec![FetchIncrement::op(); n];
        (spec, imp, ops)
    }

    #[test]
    fn per_process_accounting_sums_up() {
        let (spec, imp, ops) = setup(4);
        let r = measure(
            &imp,
            spec.as_ref(),
            4,
            &ops,
            ScheduleKind::RoundRobin,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert_eq!(r.per_process_ops.len(), 4);
        assert_eq!(r.total_ops, r.per_process_ops.iter().sum::<u64>());
        assert_eq!(r.max_ops, *r.per_process_ops.iter().max().unwrap());
        assert!((r.mean_ops - r.total_ops as f64 / 4.0).abs() < 1e-12);
        assert!(r.lin_checked && r.linearizable);
    }

    #[test]
    fn responses_are_indexed_by_process() {
        let (spec, imp, ops) = setup(3);
        let r = measure(
            &imp,
            spec.as_ref(),
            3,
            &ops,
            ScheduleKind::Sequential,
            &MeasureConfig::default(),
        )
        .unwrap();
        // Sequential: p0 sees 0, p1 sees 1, p2 sees 2.
        let got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn history_matches_run_shape() {
        let (spec, imp, ops) = setup(2);
        let r = measure(
            &imp,
            spec.as_ref(),
            2,
            &ops,
            ScheduleKind::Sequential,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.history.is_complete());
        assert_eq!(r.history.len(), 2);
        // Sequential runs produce a sequential history: op 0 precedes op 1.
        let recs = r.history.records();
        assert!(recs[0].responded_at.unwrap() < recs[1].invoked_at);
    }

    #[test]
    fn disabled_check_reports_unchecked() {
        let (spec, imp, ops) = setup(2);
        let cfg = MeasureConfig {
            check_linearizability: false,
            ..MeasureConfig::default()
        };
        let r = measure(&imp, spec.as_ref(), 2, &ops, ScheduleKind::Sequential, &cfg).unwrap();
        assert!(r.linearizable && !r.lin_checked);
        assert!(r.to_string().contains("(unchecked)"));
    }

    #[test]
    #[should_panic(expected = "one operation per process")]
    fn mismatched_ops_panic() {
        let (spec, imp, ops) = setup(2);
        measure(
            &imp,
            spec.as_ref(),
            3,
            &ops,
            ScheduleKind::Sequential,
            &MeasureConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn deterministic_across_calls() {
        let (spec, imp, ops) = setup(5);
        let a = measure(
            &imp,
            spec.as_ref(),
            5,
            &ops,
            ScheduleKind::RandomInterleave { seed: 8 },
            &MeasureConfig::default(),
        )
        .unwrap();
        let b = measure(
            &imp,
            spec.as_ref(),
            5,
            &ops,
            ScheduleKind::RandomInterleave { seed: 8 },
            &MeasureConfig::default(),
        )
        .unwrap();
        assert_eq!(a.per_process_ops, b.per_process_ops);
        assert_eq!(a.responses, b.responses);
    }
}
