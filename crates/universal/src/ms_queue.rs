//! A Michael–Scott-style linked queue over LL/SC — a *structural*
//! semantics-exploiting implementation.
//!
//! [`crate::DirectLlSc`] exploits type semantics in the bluntest way: the
//! whole state lives in one unbounded register. Real LL/SC queues exploit
//! the semantics *structurally* — a linked list of nodes with head/tail
//! pointers, each operation touching O(1) registers regardless of queue
//! length. This module reproduces that classic design inside the paper's
//! memory model, using [`Value::Reg`] register names as pointers:
//!
//! * every node is a register holding `(item, next)` where `next` is
//!   another node's register name or [`Value::Unit`];
//! * `HEAD`/`TAIL` registers hold node names; a dummy node anchors the
//!   empty queue, exactly as in Michael & Scott's algorithm;
//! * `enqueue` links a fresh node after the tail with LL/SC on the tail
//!   node's register (helping lagging tails forward), `dequeue` swings
//!   `HEAD` with LL/SC.
//!
//! Being type-aware, it is *not* subject to the paper's oblivious lower
//! bound — solo cost is a small constant (measured in the tests) — while
//! remaining lock-free and linearizable under every schedule. Node
//! allocation uses a host-side atomic counter (the model's registers are
//! free and infinite; uniqueness of names is all that matters).

use crate::implementation::ObjectImplementation;
use llsc_objects::{op_arg, op_tag, ObjectSpec, Queue};
use llsc_shmem::dsl::{ll, read, sc, swap, Step};
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// `HEAD` register: holds the name of the current dummy/front node.
const HEAD: RegisterId = RegisterId(10);
/// `TAIL` register: holds the name of the last (or second-to-last) node.
const TAIL: RegisterId = RegisterId(11);
/// Node registers are allocated upward from here.
const NODE_BASE: u64 = 5_000_000;

fn node(item: Value, next: Value) -> Value {
    Value::tuple([item, next])
}

fn node_item(v: &Value) -> &Value {
    v.index(0).expect("node item")
}

fn node_next(v: &Value) -> &Value {
    v.index(1).expect("node next")
}

/// The Michael–Scott-style LL/SC queue (multi-use, lock-free,
/// linearizable; solo cost O(1) per operation).
///
/// # Examples
///
/// ```
/// use llsc_universal::{MsQueue, measure, MeasureConfig, ScheduleKind};
/// use llsc_objects::Queue;
/// use llsc_shmem::Value;
///
/// let spec = std::sync::Arc::new(Queue::new());
/// let imp = MsQueue::new(Queue::new());
/// let ops = vec![
///     Queue::enqueue_op(Value::from(7i64)),
///     Queue::dequeue_op(),
///     Queue::dequeue_op(),
/// ];
/// let r = measure(&imp, spec.as_ref(), 3, &ops, ScheduleKind::RandomInterleave { seed: 1 },
///                 &MeasureConfig::default()).expect("run completes");
/// assert!(r.linearizable);
/// ```
pub struct MsQueue {
    initial_items: Vec<Value>,
    next_node: AtomicU64,
}

impl MsQueue {
    /// Creates the implementation; `spec` supplies the initial items.
    pub fn new(spec: Queue) -> Self {
        let initial = spec.initial();
        let items = initial.as_tuple().expect("queue state is a tuple").to_vec();
        MsQueue {
            next_node: AtomicU64::new(NODE_BASE + items.len() as u64 + 1),
            initial_items: items,
        }
    }

    fn alloc(&self) -> RegisterId {
        RegisterId(self.next_node.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for MsQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue")
            .field("initial_items", &self.initial_items.len())
            .finish()
    }
}

impl ObjectImplementation for MsQueue {
    fn name(&self) -> String {
        format!("ms-queue(init={})", self.initial_items.len())
    }

    fn initial_memory(&self, _n: usize) -> Vec<(RegisterId, Value)> {
        // Dummy node at NODE_BASE, then one node per initial item, linked
        // in order; HEAD points at the dummy, TAIL at the last node.
        let count = self.initial_items.len() as u64;
        let mut mem = Vec::new();
        for (i, item) in self.initial_items.iter().enumerate() {
            let id = NODE_BASE + 1 + i as u64;
            let next = if (i as u64) + 1 < count {
                Value::Reg(RegisterId(id + 1))
            } else {
                Value::Unit
            };
            mem.push((RegisterId(id), node(item.clone(), next)));
        }
        let dummy_next = if count > 0 {
            Value::Reg(RegisterId(NODE_BASE + 1))
        } else {
            Value::Unit
        };
        mem.push((RegisterId(NODE_BASE), node(Value::Unit, dummy_next)));
        mem.push((HEAD, Value::Reg(RegisterId(NODE_BASE))));
        let tail_node = if count > 0 {
            NODE_BASE + count
        } else {
            NODE_BASE
        };
        mem.push((TAIL, Value::Reg(RegisterId(tail_node))));
        mem
    }

    fn invoke(
        &self,
        _pid: ProcessId,
        _n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        match op_tag(&op) {
            t if t == op_tag(&Queue::dequeue_op()) => dequeue(k),
            t if t == op_tag(&Queue::enqueue_op(Value::Unit)) => {
                let item = op_arg(&op, 0).expect("enqueue item").clone();
                let fresh = self.alloc();
                // Publish the fresh node's contents (next = Unit), then
                // link it in.
                swap(fresh, node(item, Value::Unit), move |_| enqueue(fresh, k))
            }
            _ => panic!("ms-queue: unsupported operation {op}"),
        }
    }

    fn is_multi_use(&self) -> bool {
        true
    }
}

/// The enqueue loop: read the tail, try to link `fresh` after it, helping
/// a lagging tail pointer forward when needed.
fn enqueue(fresh: RegisterId, k: Box<dyn FnOnce(Value) -> Step>) -> Step {
    ll(TAIL, move |tail_val| {
        let t = tail_val.as_reg().expect("TAIL holds a node name");
        ll(t, move |tnode| {
            match node_next(&tnode) {
                Value::Unit => {
                    // Tail is the real last node: link after it.
                    let linked = node(node_item(&tnode).clone(), Value::Reg(fresh));
                    sc(t, linked, move |ok, _| {
                        if ok {
                            // Swing TAIL (failure is fine: someone helped).
                            sc(TAIL, Value::Reg(fresh), move |_, _| k(Value::Unit))
                        } else {
                            enqueue(fresh, k)
                        }
                    })
                }
                Value::Reg(next) => {
                    // Tail lags: help swing it forward and retry.
                    let next = *next;
                    sc(TAIL, Value::Reg(next), move |_, _| enqueue(fresh, k))
                }
                other => unreachable!("node next is a name or Unit, got {other}"),
            }
        })
    })
}

/// The dequeue loop: swing HEAD past the dummy to the first real node.
fn dequeue(k: Box<dyn FnOnce(Value) -> Step>) -> Step {
    ll(HEAD, move |head_val| {
        let h = head_val.as_reg().expect("HEAD holds a node name");
        read(h, move |hnode| match node_next(&hnode) {
            Value::Unit => k(llsc_objects::queue_empty_response()),
            Value::Reg(first) => {
                let first = *first;
                read(first, move |fnode| {
                    let item = node_item(&fnode).clone();
                    sc(HEAD, Value::Reg(first), move |ok, _| {
                        if ok {
                            k(item)
                        } else {
                            dequeue(k)
                        }
                    })
                })
            }
            other => unreachable!("node next is a name or Unit, got {other}"),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureConfig, ScheduleKind};
    use llsc_objects::ObjectSpec;
    use std::sync::Arc;

    fn check(initial: usize, ops: Vec<Value>, kind: ScheduleKind) -> crate::measure::MeasureResult {
        let n = ops.len();
        let spec = Arc::new(Queue::with_numbered_items(initial));
        let imp = MsQueue::new(Queue::with_numbered_items(initial));
        measure(
            &imp,
            spec.as_ref(),
            n,
            &ops,
            kind,
            &MeasureConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn initialised_queue_dequeues_in_order() {
        let r = check(4, vec![Queue::dequeue_op(); 4], ScheduleKind::Sequential);
        assert!(r.linearizable);
        let got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_dequeue_reports_empty() {
        let r = check(0, vec![Queue::dequeue_op(); 2], ScheduleKind::Sequential);
        assert!(r.linearizable);
        for resp in &r.responses {
            assert_eq!(resp, &llsc_objects::queue_empty_response());
        }
    }

    #[test]
    fn linearizable_under_contended_schedules() {
        let ops = vec![
            Queue::enqueue_op(Value::from(10i64)),
            Queue::enqueue_op(Value::from(20i64)),
            Queue::dequeue_op(),
            Queue::dequeue_op(),
            Queue::dequeue_op(),
        ];
        for kind in [
            ScheduleKind::RoundRobin,
            ScheduleKind::RandomInterleave { seed: 3 },
            ScheduleKind::RandomInterleave { seed: 77 },
            ScheduleKind::Adversary,
        ] {
            let r = check(1, ops.clone(), kind);
            assert!(r.linearizable, "{kind:?}\n{}", r.history);
        }
    }

    #[test]
    fn solo_cost_is_constant_independent_of_length() {
        // The structural advantage over DirectLlSc: O(1) registers touched
        // per op even for a long queue — and, unlike the oblivious
        // constructions, no dependence on n.
        for initial in [1usize, 64, 512] {
            let r = check(initial, vec![Queue::dequeue_op()], ScheduleKind::Sequential);
            assert!(r.max_ops <= 4, "init={initial}: {} ops", r.max_ops);
        }
        // Enqueues likewise: publish + LL TAIL + LL node + SC + SC.
        let spec = Arc::new(Queue::new());
        let imp = MsQueue::new(Queue::new());
        let ops = vec![Queue::enqueue_op(Value::from(1i64))];
        let r = measure(
            &imp,
            spec.as_ref(),
            1,
            &ops,
            ScheduleKind::Sequential,
            &MeasureConfig::default(),
        )
        .unwrap();
        assert!(r.max_ops <= 5, "{} ops", r.max_ops);
    }

    #[test]
    fn multi_use_chains_work() {
        use crate::measure_multi_use;
        let spec: Arc<dyn ObjectSpec> = Arc::new(Queue::new());
        let imp: Arc<dyn ObjectImplementation> = Arc::new(MsQueue::new(Queue::new()));
        let ops = vec![
            vec![
                Queue::enqueue_op(Value::from(1i64)),
                Queue::enqueue_op(Value::from(2i64)),
            ],
            vec![Queue::dequeue_op(), Queue::dequeue_op()],
        ];
        let r = measure_multi_use(
            imp,
            spec.as_ref(),
            2,
            &ops,
            ScheduleKind::RoundRobin,
            1_000_000,
        )
        .unwrap();
        // Queue is not a counting object; the generic consistency flag is
        // reported true (unchecked); assert the run completed with sane
        // amortised cost instead.
        assert!(r.max_amortised <= 16.0, "{}", r.max_amortised);
    }

    #[test]
    fn helping_swings_lagging_tails() {
        // Two concurrent enqueues under round-robin force the lag/help
        // path; the queue must still linearize and both items must be
        // dequeueable.
        let ops = vec![
            Queue::enqueue_op(Value::from(1i64)),
            Queue::enqueue_op(Value::from(2i64)),
        ];
        let r = check(0, ops, ScheduleKind::RoundRobin);
        assert!(r.linearizable);
        // Drain sequentially afterwards via a fresh instance seeded the
        // same way is not possible (state lives in the run); instead check
        // the enqueue acks.
        for resp in &r.responses {
            assert_eq!(resp, &Value::Unit);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported operation")]
    fn foreign_ops_are_rejected() {
        let imp = MsQueue::new(Queue::new());
        let _ = imp.invoke(
            ProcessId(0),
            1,
            llsc_objects::Counter::read_op(),
            Box::new(llsc_shmem::dsl::done),
        );
    }
}
