//! Multi-operation (`k`-use and long-lived) measurement.
//!
//! The paper's lower bound is proved for *single-use* implementations —
//! which makes it stronger, since any `k`-use or long-lived implementation
//! contains a single-use one. This module measures the other direction:
//! what implementations cost when each process applies a whole sequence of
//! operations, the setting of Corollary 6.1's `k`-use definition and of
//! real deployments.
//!
//! Only multi-use implementations (per
//! [`ObjectImplementation::is_multi_use`]) can be driven here; of the
//! shipped constructions that is [`crate::DirectLlSc`]. The amortised
//! numbers it produces quantify the paper's introduction: contention-free,
//! the direct object needs 2 shared ops per operation *regardless of `k`
//! or `n`*, while under the adversary the per-operation cost is `Θ(n)`.

use crate::implementation::ObjectImplementation;
use crate::measure::ScheduleKind;
use llsc_objects::{apply_all, ObjectSpec};
use llsc_shmem::dsl::{done, Step};
use llsc_shmem::{
    Algorithm, Executor, ExecutorConfig, ProcessId, Program, RandomScheduler, RegisterId,
    RoundRobinScheduler, Run, RunError, Scheduler, SequentialScheduler, Value, ZeroTosses,
};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// The outcome of a multi-operation measurement.
#[derive(Clone, Debug)]
pub struct MultiUseResult {
    /// The implementation's name.
    pub implementation: String,
    /// Number of processes.
    pub n: usize,
    /// Operations applied by each process (first process's count).
    pub ops_per_process: usize,
    /// Shared-memory steps per process (whole sequence).
    pub per_process_ops: Vec<u64>,
    /// The worst process's *amortised* cost: shared steps divided by
    /// operations applied.
    pub max_amortised: f64,
    /// Mean amortised cost over processes.
    pub mean_amortised: f64,
    /// For commutative counting objects (fetch&increment, fetch&add): the
    /// observed response multiset matches a sequential execution of all
    /// operations. Reported `true` without checking for other specs.
    pub responses_consistent: bool,
}

impl fmt::Display for MultiUseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} k={} amortised max={:.2} mean={:.2} consistent={}",
            self.implementation,
            self.n,
            self.ops_per_process,
            self.max_amortised,
            self.mean_amortised,
            self.responses_consistent
        )
    }
}

/// An algorithm in which process `p` applies `ops[p]` in order through a
/// shared (`Arc`'d) implementation and returns the tuple of responses.
struct ArcAlgorithm {
    imp: Arc<dyn ObjectImplementation>,
    ops: Vec<Vec<Value>>,
}

impl Algorithm for ArcAlgorithm {
    fn name(&self) -> &'static str {
        "multi-use-implementation"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        fn chain(
            imp: Arc<dyn ObjectImplementation>,
            pid: ProcessId,
            n: usize,
            mut remaining: VecDeque<Value>,
            mut collected: Vec<Value>,
        ) -> Step {
            match remaining.pop_front() {
                None => done(Value::tuple(collected)),
                Some(op) => {
                    let imp2 = Arc::clone(&imp);
                    imp.invoke(
                        pid,
                        n,
                        op,
                        Box::new(move |resp| {
                            collected.push(resp);
                            chain(imp2, pid, n, remaining, collected)
                        }),
                    )
                }
            }
        }
        let ops = self.ops[pid.0].iter().cloned().collect();
        chain(Arc::clone(&self.imp), pid, n, ops, Vec::new()).into_program()
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        self.imp.initial_memory(n)
    }
}

/// Measures a multi-use implementation: process `p` applies `ops[p]` in
/// order; amortised shared-access cost and (for counting objects) response
/// consistency are reported.
///
/// `imp` is taken by `Arc` so per-process programs can chain invocations
/// with `'static` continuations.
///
/// # Errors
///
/// Returns the structured [`RunError`] when the run does not complete
/// within `max_steps` (or the executor's event budget).
///
/// # Panics
///
/// Panics if `imp` is single-use or `ops.len() != n` — caller bugs, not
/// run outcomes.
///
/// # Examples
///
/// ```
/// use llsc_universal::{measure_multi_use, DirectLlSc, ObjectImplementation, ScheduleKind};
/// use llsc_objects::FetchIncrement;
/// use std::sync::Arc;
///
/// let spec = Arc::new(FetchIncrement::new(32));
/// let imp: Arc<dyn ObjectImplementation> = Arc::new(DirectLlSc::new(spec.clone()));
/// let ops = vec![vec![FetchIncrement::op(); 8]; 4];
/// let r = measure_multi_use(imp, spec.as_ref(), 4, &ops, ScheduleKind::Sequential, 1_000_000)
///     .expect("solo runs complete well within the step budget");
/// assert!(r.responses_consistent);
/// assert_eq!(r.max_amortised, 2.0); // LL + SC per operation, solo
/// ```
pub fn measure_multi_use(
    imp: Arc<dyn ObjectImplementation>,
    spec: &dyn ObjectSpec,
    n: usize,
    ops: &[Vec<Value>],
    kind: ScheduleKind,
    max_steps: u64,
) -> Result<MultiUseResult, RunError> {
    assert!(imp.is_multi_use(), "{} is single-use", imp.name());
    assert_eq!(ops.len(), n, "one operation sequence per process");

    let alg = ArcAlgorithm {
        imp: Arc::clone(&imp),
        ops: ops.to_vec(),
    };
    let run = match kind {
        ScheduleKind::Adversary => {
            let cfg = llsc_core::AdversaryConfig::lightweight();
            let all = llsc_core::build_all_run(&alg, n, Arc::new(ZeroTosses), &cfg)?;
            all.base.outcome.into_result()?;
            all.base.run
        }
        other => {
            let mut exec = Executor::new(&alg, n, Arc::new(ZeroTosses), ExecutorConfig::default());
            let mut sched: Box<dyn Scheduler> = match other {
                ScheduleKind::Sequential => Box::new(SequentialScheduler::new()),
                ScheduleKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
                ScheduleKind::RandomInterleave { seed } => Box::new(RandomScheduler::new(seed)),
                ScheduleKind::Adversary => unreachable!(),
            };
            exec.drive(sched.as_mut(), max_steps)?;
            exec.run_outcome().into_result()?;
            exec.into_run()
        }
    };

    let per_process_ops: Vec<u64> = ProcessId::all(n).map(|p| run.shared_steps(p)).collect();
    let amortised: Vec<f64> = per_process_ops
        .iter()
        .zip(ops)
        .map(|(&steps, seq)| steps as f64 / seq.len().max(1) as f64)
        .collect();
    let responses_consistent = check_counting_consistency(spec, &run, ops, n);

    Ok(MultiUseResult {
        implementation: imp.name(),
        n,
        ops_per_process: ops.first().map(Vec::len).unwrap_or(0),
        per_process_ops,
        max_amortised: amortised.iter().copied().fold(0.0, f64::max),
        mean_amortised: amortised.iter().sum::<f64>() / n.max(1) as f64,
        responses_consistent,
    })
}

/// For commutative counting objects, the multiset of responses of any
/// linearizable execution equals that of a sequential execution of the
/// same operations (the response depends only on how many operations
/// preceded, not which). Checked for fetch&increment / fetch&add; other
/// specs return `true` unchecked.
fn check_counting_consistency(
    spec: &dyn ObjectSpec,
    run: &Run,
    ops: &[Vec<Value>],
    n: usize,
) -> bool {
    if !spec.name().starts_with("fetch&increment") && !spec.name().starts_with("fetch&add") {
        return true;
    }
    let mut observed: Vec<Value> = Vec::new();
    for p in ProcessId::all(n) {
        let Some(v) = run.verdict(p) else {
            return false;
        };
        let Some(items) = v.as_tuple() else {
            return false;
        };
        observed.extend(items.iter().cloned());
    }
    let flat: Vec<Value> = ops.iter().flatten().cloned().collect();
    let (_, mut expected) = apply_all(spec, &flat);
    observed.sort();
    expected.sort();
    observed == expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectLlSc;
    use llsc_objects::{Counter, FetchIncrement};

    #[test]
    fn direct_object_amortised_solo_cost_is_two() {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp: Arc<dyn ObjectImplementation> = Arc::new(DirectLlSc::new(spec.clone()));
        for k in [1usize, 4, 16] {
            let ops: Vec<Vec<Value>> = (0..4).map(|_| vec![FetchIncrement::op(); k]).collect();
            let r = measure_multi_use(
                Arc::clone(&imp),
                spec.as_ref(),
                4,
                &ops,
                ScheduleKind::Sequential,
                10_000_000,
            )
            .unwrap();
            assert!(r.responses_consistent, "k={k}");
            assert!(
                (r.max_amortised - 2.0).abs() < 1e-9,
                "k={k}: {}",
                r.max_amortised
            );
        }
    }

    #[test]
    fn direct_object_contended_amortised_cost_is_linear() {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp: Arc<dyn ObjectImplementation> = Arc::new(DirectLlSc::new(spec.clone()));
        let n = 8;
        let k = 4;
        let ops: Vec<Vec<Value>> = (0..n).map(|_| vec![FetchIncrement::op(); k]).collect();
        let r = measure_multi_use(
            Arc::clone(&imp),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            10_000_000,
        )
        .unwrap();
        assert_eq!(r.ops_per_process, k);
        assert!(r.responses_consistent);
        // Under the adversary one SC succeeds per round: amortised Θ(n).
        assert!(r.max_amortised >= n as f64 / 2.0, "{}", r.max_amortised);
    }

    #[test]
    fn round_robin_multi_use_is_consistent() {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp: Arc<dyn ObjectImplementation> = Arc::new(DirectLlSc::new(spec.clone()));
        let ops: Vec<Vec<Value>> = (0..5).map(|_| vec![FetchIncrement::op(); 3]).collect();
        let r = measure_multi_use(
            imp,
            spec.as_ref(),
            5,
            &ops,
            ScheduleKind::RoundRobin,
            10_000_000,
        )
        .unwrap();
        assert!(r.responses_consistent);
        assert!(r.to_string().contains("consistent=true"));
    }

    #[test]
    fn uneven_sequences_are_supported() {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp: Arc<dyn ObjectImplementation> = Arc::new(DirectLlSc::new(spec.clone()));
        let ops = vec![
            vec![FetchIncrement::op(); 5],
            vec![FetchIncrement::op(); 1],
            vec![],
        ];
        let r = measure_multi_use(
            imp,
            spec.as_ref(),
            3,
            &ops,
            ScheduleKind::RandomInterleave { seed: 2 },
            1_000_000,
        )
        .unwrap();
        assert!(r.responses_consistent);
        assert_eq!(r.per_process_ops[2], 0, "no ops, no steps");
    }

    #[test]
    fn non_counting_spec_skips_the_multiset_check() {
        let spec = Arc::new(Counter::new(16));
        let imp: Arc<dyn ObjectImplementation> = Arc::new(DirectLlSc::new(spec.clone()));
        let ops: Vec<Vec<Value>> = (0..3)
            .map(|_| vec![Counter::increment_op(), Counter::read_op()])
            .collect();
        let r = measure_multi_use(
            imp,
            spec.as_ref(),
            3,
            &ops,
            ScheduleKind::RoundRobin,
            1_000_000,
        )
        .unwrap();
        assert!(r.responses_consistent, "unchecked specs report true");
    }

    #[test]
    #[should_panic(expected = "single-use")]
    fn single_use_implementations_are_rejected() {
        let spec = Arc::new(FetchIncrement::new(16));
        let imp: Arc<dyn ObjectImplementation> =
            Arc::new(crate::AdtTreeUniversal::new(spec.clone()));
        let ops = vec![vec![FetchIncrement::op()]; 2];
        measure_multi_use(imp, spec.as_ref(), 2, &ops, ScheduleKind::RoundRobin, 1000).unwrap();
    }
}
