//! A Treiber stack over LL/SC — the companion structural implementation
//! to [`crate::MsQueue`].
//!
//! `TOP` holds the name of the top node (or [`Value::Unit`] when empty);
//! each node register holds `(item, below)`. A push publishes a fresh node
//! pointing at the observed top and swings `TOP` with SC; a pop swings
//! `TOP` to the node below. Nodes are never reused, so the model sees no
//! ABA. Solo cost: 3 shared ops per push, 3 per pop.

use crate::implementation::ObjectImplementation;
use llsc_objects::{op_arg, op_tag, Stack};
use llsc_shmem::dsl::{ll, read, sc, swap, Step};
use llsc_shmem::{ProcessId, RegisterId, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// `TOP` register: the top node's name, or Unit.
const TOP: RegisterId = RegisterId(12);
/// Node registers are allocated upward from here.
const NODE_BASE: u64 = 6_000_000;

fn node(item: Value, below: Value) -> Value {
    Value::tuple([item, below])
}

/// The Treiber LL/SC stack (multi-use, lock-free, linearizable; solo cost
/// O(1) per operation).
///
/// # Examples
///
/// ```
/// use llsc_universal::{TreiberStack, measure, MeasureConfig, ScheduleKind};
/// use llsc_objects::Stack;
/// use llsc_shmem::Value;
///
/// let spec = std::sync::Arc::new(Stack::new());
/// let imp = TreiberStack::new(Stack::new());
/// let ops = vec![Stack::push_op(Value::from(1i64)), Stack::pop_op()];
/// let r = measure(&imp, spec.as_ref(), 2, &ops, ScheduleKind::RoundRobin,
///                 &MeasureConfig::default()).expect("run completes");
/// assert!(r.linearizable);
/// ```
pub struct TreiberStack {
    initial_items: Vec<Value>,
    next_node: AtomicU64,
}

impl TreiberStack {
    /// Creates the implementation; `spec` supplies the initial items
    /// (bottom first, as in [`Stack`]).
    pub fn new(spec: Stack) -> Self {
        use llsc_objects::ObjectSpec;
        let items = spec
            .initial()
            .as_tuple()
            .expect("stack state is a tuple")
            .to_vec();
        TreiberStack {
            next_node: AtomicU64::new(NODE_BASE + items.len() as u64),
            initial_items: items,
        }
    }

    fn alloc(&self) -> RegisterId {
        RegisterId(self.next_node.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for TreiberStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberStack")
            .field("initial_items", &self.initial_items.len())
            .finish()
    }
}

impl ObjectImplementation for TreiberStack {
    fn name(&self) -> String {
        format!("treiber-stack(init={})", self.initial_items.len())
    }

    fn initial_memory(&self, _n: usize) -> Vec<(RegisterId, Value)> {
        // Items bottom-first: node i sits above node i-1.
        let mut mem = Vec::new();
        let mut below = Value::Unit;
        for (i, item) in self.initial_items.iter().enumerate() {
            let id = RegisterId(NODE_BASE + i as u64);
            mem.push((id, node(item.clone(), below.clone())));
            below = Value::Reg(id);
        }
        mem.push((TOP, below));
        mem
    }

    fn invoke(
        &self,
        _pid: ProcessId,
        _n: usize,
        op: Value,
        k: Box<dyn FnOnce(Value) -> Step>,
    ) -> Step {
        match op_tag(&op) {
            t if t == op_tag(&Stack::pop_op()) => pop(k),
            t if t == op_tag(&Stack::push_op(Value::Unit)) => {
                let item = op_arg(&op, 0).expect("push item").clone();
                push(self.alloc(), item, k)
            }
            _ => panic!("treiber-stack: unsupported operation {op}"),
        }
    }

    fn is_multi_use(&self) -> bool {
        true
    }
}

fn push(fresh: RegisterId, item: Value, k: Box<dyn FnOnce(Value) -> Step>) -> Step {
    ll(TOP, move |top| {
        // Publish the node pointing at the observed top, then swing TOP.
        swap(fresh, node(item.clone(), top), move |_| {
            sc(TOP, Value::Reg(fresh), move |ok, _| {
                if ok {
                    k(Value::Unit)
                } else {
                    push(fresh, item, k)
                }
            })
        })
    })
}

fn pop(k: Box<dyn FnOnce(Value) -> Step>) -> Step {
    ll(TOP, move |top| match top {
        Value::Unit => k(llsc_objects::stack_empty_response()),
        Value::Reg(t) => read(t, move |tnode| {
            let item = tnode.index(0).expect("node item").clone();
            let below = tnode.index(1).expect("node below").clone();
            sc(TOP, below, move |ok, _| if ok { k(item) } else { pop(k) })
        }),
        other => unreachable!("TOP holds a name or Unit, got {other}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureConfig, ScheduleKind};
    use llsc_objects::ObjectSpec;
    use std::sync::Arc;

    fn check(initial: usize, ops: Vec<Value>, kind: ScheduleKind) -> crate::measure::MeasureResult {
        let n = ops.len();
        let spec = Arc::new(Stack::with_numbered_items(initial));
        let imp = TreiberStack::new(Stack::with_numbered_items(initial));
        measure(
            &imp,
            spec.as_ref(),
            n,
            &ops,
            kind,
            &MeasureConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn initialised_stack_pops_in_order() {
        let r = check(4, vec![Stack::pop_op(); 4], ScheduleKind::Sequential);
        assert!(r.linearizable);
        let got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4], "numbered stack pops 1..n");
    }

    #[test]
    fn empty_pop_reports_empty() {
        let r = check(0, vec![Stack::pop_op(); 2], ScheduleKind::RoundRobin);
        assert!(r.linearizable);
        for resp in &r.responses {
            assert_eq!(resp, &llsc_objects::stack_empty_response());
        }
    }

    #[test]
    fn linearizable_under_contended_schedules() {
        let ops = vec![
            Stack::push_op(Value::from(10i64)),
            Stack::push_op(Value::from(20i64)),
            Stack::pop_op(),
            Stack::pop_op(),
            Stack::pop_op(),
        ];
        for kind in [
            ScheduleKind::RoundRobin,
            ScheduleKind::RandomInterleave { seed: 5 },
            ScheduleKind::RandomInterleave { seed: 91 },
            ScheduleKind::Adversary,
        ] {
            let r = check(1, ops.clone(), kind);
            assert!(r.linearizable, "{kind:?}\n{}", r.history);
        }
    }

    #[test]
    fn solo_cost_is_constant_independent_of_depth() {
        for initial in [1usize, 64, 512] {
            let r = check(initial, vec![Stack::pop_op()], ScheduleKind::Sequential);
            assert_eq!(r.max_ops, 3, "init={initial}");
        }
        let r = check(
            0,
            vec![Stack::push_op(Value::from(1i64))],
            ScheduleKind::Sequential,
        );
        assert_eq!(r.max_ops, 3);
    }

    #[test]
    fn multi_use_push_pop_round_trips() {
        use crate::measure_multi_use;
        let spec: Arc<dyn ObjectSpec> = Arc::new(Stack::new());
        let imp: Arc<dyn ObjectImplementation> = Arc::new(TreiberStack::new(Stack::new()));
        let ops = vec![
            vec![Stack::push_op(Value::from(1i64)), Stack::pop_op()],
            vec![Stack::push_op(Value::from(2i64)), Stack::pop_op()],
        ];
        let r = measure_multi_use(
            imp,
            spec.as_ref(),
            2,
            &ops,
            ScheduleKind::RandomInterleave { seed: 8 },
            1_000_000,
        )
        .unwrap();
        assert!(r.max_amortised <= 10.0);
    }

    #[test]
    #[should_panic(expected = "unsupported operation")]
    fn foreign_ops_are_rejected() {
        let imp = TreiberStack::new(Stack::new());
        let _ = imp.invoke(
            ProcessId(0),
            1,
            llsc_objects::Queue::dequeue_op(),
            Box::new(llsc_shmem::dsl::done),
        );
    }
}
