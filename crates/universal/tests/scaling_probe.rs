use llsc_objects::FetchIncrement;
use llsc_universal::{
    measure, AdtTreeUniversal, CombiningTreeUniversal, HerlihyUniversal, MeasureConfig,
    ScheduleKind,
};
use std::sync::Arc;

#[test]
#[ignore]
fn probe() {
    let cfg = MeasureConfig {
        check_linearizability: false,
        ..MeasureConfig::default()
    };
    for n in [4, 8, 16, 32, 64, 128, 256] {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let adt_adv = measure(
            &AdtTreeUniversal::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &cfg,
        )
        .unwrap();
        let adt_rr = measure(
            &AdtTreeUniversal::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::RoundRobin,
            &cfg,
        )
        .unwrap();
        let naive_adv = measure(
            &CombiningTreeUniversal::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &cfg,
        )
        .unwrap();
        let her_adv = measure(
            &HerlihyUniversal::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &cfg,
        )
        .unwrap();
        println!(
            "n={n:4}  adt_adv={:4}  adt_rr={:4}  naive_adv={:4}  herlihy_adv={:4}",
            adt_adv.max_ops, adt_rr.max_ops, naive_adv.max_ops, her_adv.max_ops
        );
    }
}
