//! Bitset wakeup: the fetch&or reduction inlined onto raw LL/SC.
//!
//! Every process sets its own bit in a shared `n`-bit word with an LL/SC
//! retry loop. A successful SC returns the previous word; the process whose
//! SC completes the word (previous word = all bits but its own) returns 1.
//! This is the Theorem 6.2 fetch&or / fetch&complement mechanism.

use llsc_shmem::dsl::{done, ll, sc, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

/// The shared bitset register.
const WORD: RegisterId = RegisterId(0);

fn limbs(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

fn bit_is_set(v: &Value, i: usize) -> bool {
    v.bit(i).unwrap_or(false)
}

fn all_set_except(v: &Value, n: usize, except: usize) -> bool {
    (0..n).all(|i| i == except || bit_is_set(v, i))
}

/// The bitset wakeup algorithm (deterministic, `Θ(n)` worst case under the
/// adversary; the per-process word makes the winner's evidence explicit).
///
/// # Examples
///
/// ```
/// use llsc_core::{verify_lower_bound, AdversaryConfig};
/// use llsc_wakeup::BitsetWakeup;
/// use llsc_shmem::ZeroTosses;
/// use std::sync::Arc;
///
/// let rep = verify_lower_bound(&BitsetWakeup, 8, Arc::new(ZeroTosses), &AdversaryConfig::default())
///     .expect("the adversary run completes within the default budgets");
/// assert!(rep.wakeup.ok());
/// assert!(rep.bound_holds);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitsetWakeup;

impl Algorithm for BitsetWakeup {
    fn name(&self) -> &'static str {
        "bitset-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        fn attempt(pid: ProcessId, n: usize) -> Step {
            ll(WORD, move |prev| {
                let mut words = prev.as_bits().map(<[u64]>::to_vec).unwrap_or_default();
                words.resize(limbs(n), 0);
                words[pid.0 / 64] |= 1 << (pid.0 % 64);
                sc(WORD, Value::bits(words), move |ok, _| {
                    if !ok {
                        attempt(pid, n)
                    } else if all_set_except(&prev, n, pid.0) {
                        done(Value::from(1i64))
                    } else {
                        done(Value::from(0i64))
                    }
                })
            })
        }
        attempt(pid, n).into_program()
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        vec![(WORD, Value::zero_bits(limbs(n)))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{build_all_run, check_wakeup, verify_lower_bound, AdversaryConfig};
    use llsc_shmem::{Executor, ExecutorConfig, RandomScheduler, ZeroTosses};
    use std::sync::Arc;

    #[test]
    fn satisfies_wakeup_under_the_adversary() {
        for n in [1, 2, 5, 16, 65, 130] {
            let all = build_all_run(
                &BitsetWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(all.base.completed, "n={n}");
            let check = check_wakeup(&all.base.run);
            assert!(check.ok(), "n={n}: {check}");
            // Exactly one process completes the word.
            assert_eq!(check.winners.len(), 1, "n={n}");
        }
    }

    #[test]
    fn satisfies_wakeup_under_random_schedules() {
        for seed in 0..10 {
            let mut e = Executor::new(
                &BitsetWakeup,
                7,
                Arc::new(ZeroTosses),
                ExecutorConfig::default(),
            );
            e.drive(&mut RandomScheduler::new(seed), 1_000_000).unwrap();
            assert!(e.all_terminated(), "seed={seed}");
            assert!(check_wakeup(e.run()).ok(), "seed={seed}");
        }
    }

    #[test]
    fn bound_holds_across_sweep() {
        for n in [4, 16, 64] {
            let rep = verify_lower_bound(
                &BitsetWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(rep.bound_holds, "n={n}");
            assert!(rep.refutation.is_none());
        }
    }

    #[test]
    fn helpers() {
        let v = Value::bits(vec![0b0111]);
        assert!(all_set_except(&v, 4, 3));
        assert!(!all_set_except(&v, 4, 2));
        assert!(bit_is_set(&v, 1));
        assert!(!bit_is_set(&v, 3));
        assert_eq!(limbs(1), 1);
        assert_eq!(limbs(65), 2);
    }
}
