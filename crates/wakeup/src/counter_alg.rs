//! Counter-based wakeup: the canonical one-shot fetch&increment solution.
//!
//! Every process increments a shared counter once, via the optimistic
//! LL/SC retry loop; the process whose successful SC installs `n` has seen
//! response `n - 1` and knows everyone else already incremented — it
//! returns 1; everyone else returns 0. This is exactly the Theorem 6.2
//! fetch&increment reduction inlined onto raw LL/SC.
//!
//! Correct under every scheduler. Its worst-case shared-access complexity
//! under the Figure-2 adversary is `Θ(n)` (one SC success per round), far
//! above the `Ω(log n)` bound — the tournament algorithm in
//! [`crate::TournamentWakeup`] is the one that approaches the bound.

use llsc_shmem::dsl::{done, ll, sc, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

/// The shared counter register.
const COUNTER: RegisterId = RegisterId(0);

/// The counter-based wakeup algorithm (deterministic, `Θ(n)` worst case).
///
/// # Examples
///
/// ```
/// use llsc_core::{verify_lower_bound, AdversaryConfig};
/// use llsc_wakeup::CounterWakeup;
/// use llsc_shmem::ZeroTosses;
/// use std::sync::Arc;
///
/// let rep = verify_lower_bound(&CounterWakeup, 8, Arc::new(ZeroTosses), &AdversaryConfig::default())
///     .expect("the adversary run completes within the default budgets");
/// assert!(rep.wakeup.ok());
/// assert!(rep.bound_holds);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterWakeup;

impl Algorithm for CounterWakeup {
    fn name(&self) -> &'static str {
        "counter-wakeup"
    }

    fn spawn(&self, _pid: ProcessId, n: usize) -> Box<dyn Program> {
        fn attempt(n: usize) -> Step {
            ll(COUNTER, move |prev| {
                let v = prev.as_int().unwrap_or(0);
                sc(COUNTER, Value::from(v + 1), move |ok, _| {
                    if !ok {
                        attempt(n)
                    } else if v + 1 == n as i128 {
                        done(Value::from(1i64))
                    } else {
                        done(Value::from(0i64))
                    }
                })
            })
        }
        attempt(n).into_program()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{build_all_run, ceil_log4, check_wakeup, verify_lower_bound, AdversaryConfig};
    use llsc_shmem::{Executor, ExecutorConfig, RandomScheduler, ZeroTosses};
    use std::sync::Arc;

    #[test]
    fn satisfies_wakeup_under_the_adversary() {
        for n in [1, 2, 3, 7, 16, 33] {
            let all = build_all_run(
                &CounterWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(all.base.completed, "n={n}");
            let check = check_wakeup(&all.base.run);
            assert!(check.ok(), "n={n}: {check}");
            assert_eq!(check.winners.len(), 1, "n={n}: exactly one winner");
        }
    }

    #[test]
    fn satisfies_wakeup_under_random_schedules() {
        for seed in 0..10 {
            let mut e = Executor::new(
                &CounterWakeup,
                6,
                Arc::new(ZeroTosses),
                ExecutorConfig::default(),
            );
            let mut s = RandomScheduler::new(seed);
            e.drive(&mut s, 1_000_000).unwrap();
            assert!(e.all_terminated(), "seed={seed}");
            let check = check_wakeup(e.run());
            assert!(check.ok(), "seed={seed}: {check}");
        }
    }

    #[test]
    fn winner_meets_the_log4_bound_with_linear_slack() {
        for n in [4, 16, 64, 256] {
            let rep = verify_lower_bound(
                &CounterWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(rep.bound_holds, "n={n}");
            assert!(rep.winner_steps >= ceil_log4(n));
            // And the worst case is Θ(n): the adversary serialises SCs.
            assert!(rep.max_steps >= n as u64, "n={n}: max={}", rep.max_steps);
        }
    }

    #[test]
    fn adversary_run_is_deterministic() {
        let a = build_all_run(
            &CounterWakeup,
            9,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
        )
        .unwrap();
        let b = build_all_run(
            &CounterWakeup,
            9,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
        )
        .unwrap();
        assert_eq!(a.base.run.events(), b.base.run.events());
    }
}
