//! Gossip wakeup: a hybrid algorithm that exercises **every** operation
//! the paper's memory supports — swap, move, validate, LL, and SC — in one
//! adversary run.
//!
//! Why it exists: the lower bound covers a five-operation memory, and the
//! `UP`-set update rules have dedicated cases for moves (register rule R3,
//! process rule P4) and swap chains (rules R2, P3–P5). The other shipped
//! wakeup algorithms only use LL/SC and swap; this one drives the move
//! machinery — including the secretive scheduling of real move groups —
//! through the full `(All, A)`-run / `(S, A)`-run pipeline.
//!
//! ## The algorithm
//!
//! Registers: `A[p]` (announcement bitsets) and `B[p]` (per-process
//! inboxes); one shared counter.
//!
//! 1. `p` swaps its own bit into `A[p]`.
//! 2. For each hypercube dimension `k` with partner `q = p xor 2^k < n`:
//!    `p` *moves* `A[q]` into its inbox `B[p]`, *validates* `B[p]` to read
//!    the copied bitset, merges it into its knowledge, and swaps the merged
//!    set back into `A[p]`.
//! 3. If the merged set covers all `n` processes, return 1 (the gossip
//!    fast path — this is what happens under round-synchronous schedules).
//! 4. Otherwise fall back to the one-shot LL/SC counter: the process whose
//!    increment reaches `n` returns 1. The fallback guarantees wakeup
//!    condition 2 under *every* schedule (pure asynchronous gossip cannot:
//!    a sequential run leaves everyone's bitset incomplete).
//!
//! Both "return 1" paths carry evidence that every process took a step
//! (bits only enter circulation through their owners' swaps; counter value
//! `n` needs `n` increments), so condition 3 holds under any scheduler.

use llsc_shmem::dsl::{done, ll, mv, sc, swap, validate, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

/// Announcement registers `A[p]`. The two register families get widely
/// separated bases so they stay disjoint for any realistic `n` (a base
/// collision at `n > 300` once produced a silent fallback to the counting
/// path — caught by the round-count regression test below).
const ANNOUNCE_BASE: u64 = 1_000_000;
/// Inbox registers `B[p]`.
const INBOX_BASE: u64 = 2_000_000;
/// The fallback counter.
const COUNTER: RegisterId = RegisterId(0);

fn a_reg(p: usize) -> RegisterId {
    RegisterId(ANNOUNCE_BASE + p as u64)
}

fn b_reg(p: usize) -> RegisterId {
    RegisterId(INBOX_BASE + p as u64)
}

fn limbs(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

fn own_bits(pid: ProcessId, n: usize) -> Vec<u64> {
    let mut w = vec![0u64; limbs(n)];
    w[pid.0 / 64] |= 1 << (pid.0 % 64);
    w
}

fn merge(known: &mut [u64], seen: &Value) {
    if let Some(bits) = seen.as_bits() {
        for (i, w) in bits.iter().enumerate() {
            if i < known.len() {
                known[i] |= w;
            }
        }
    }
}

fn is_full(bits: &[u64], n: usize) -> bool {
    (0..n).all(|i| bits.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1))
}

/// The move/swap/validate gossip wakeup algorithm (with an LL/SC counter
/// fallback for liveness under arbitrary schedules).
///
/// # Examples
///
/// ```
/// use llsc_core::{verify_lower_bound, AdversaryConfig};
/// use llsc_wakeup::GossipWakeup;
/// use llsc_shmem::ZeroTosses;
/// use std::sync::Arc;
///
/// let rep = verify_lower_bound(&GossipWakeup, 16, Arc::new(ZeroTosses), &AdversaryConfig::default())
///     .expect("the adversary run completes within the default budgets");
/// assert!(rep.wakeup.ok());
/// assert!(rep.bound_holds);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipWakeup;

impl Algorithm for GossipWakeup {
    fn name(&self) -> &'static str {
        "gossip-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        let known = own_bits(pid, n);
        swap(a_reg(pid.0), Value::bits(known.clone()), move |_| {
            gossip(pid, n, 0, known)
        })
        .into_program()
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        let mut mem = vec![(COUNTER, Value::from(0i64))];
        for p in 0..n {
            mem.push((a_reg(p), Value::zero_bits(limbs(n))));
            mem.push((b_reg(p), Value::zero_bits(limbs(n))));
        }
        mem
    }
}

/// One hypercube gossip dimension: move the partner's announcement into
/// the inbox, read it, merge, republish.
fn gossip(pid: ProcessId, n: usize, dim: u32, known: Vec<u64>) -> Step {
    let partner = pid.0 ^ (1usize << dim);
    if 1usize << dim >= n.next_power_of_two().max(2) {
        // Gossip finished.
        if is_full(&known, n) {
            return done(Value::from(1i64));
        }
        return fallback_count(n);
    }
    if partner >= n {
        return gossip(pid, n, dim + 1, known);
    }
    mv(a_reg(partner), b_reg(pid.0), move || {
        validate(b_reg(pid.0), move |_ok, seen| {
            let mut known = known;
            merge(&mut known, &seen);
            swap(a_reg(pid.0), Value::bits(known.clone()), move |_| {
                gossip(pid, n, dim + 1, known)
            })
        })
    })
}

/// The liveness fallback: one-shot LL/SC increment; the process that
/// installs `n` returns 1.
fn fallback_count(n: usize) -> Step {
    ll(COUNTER, move |prev| {
        let v = prev.as_int().unwrap_or(0);
        sc(COUNTER, Value::from(v + 1), move |ok, _| {
            if !ok {
                fallback_count(n)
            } else if v + 1 == n as i128 {
                done(Value::from(1i64))
            } else {
                done(Value::from(0i64))
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{build_all_run, check_wakeup, verify_lower_bound, AdversaryConfig};
    use llsc_shmem::{
        Executor, ExecutorConfig, OpKind, RandomScheduler, SequentialScheduler, ZeroTosses,
    };
    use std::sync::Arc;

    #[test]
    fn satisfies_wakeup_under_the_adversary() {
        for n in [1, 2, 3, 6, 8, 16, 31] {
            let all = build_all_run(
                &GossipWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(all.base.completed, "n={n}");
            let check = check_wakeup(&all.base.run);
            assert!(check.ok(), "n={n}: {check}");
        }
    }

    #[test]
    fn exercises_every_operation_kind_under_the_adversary() {
        let all = build_all_run(
            &GossipWakeup,
            8,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
        )
        .unwrap();
        let mut kinds = std::collections::BTreeSet::new();
        for rec in &all.base.rounds {
            for op in &rec.ops {
                kinds.insert(op.kind);
            }
        }
        // Under the round-synchronous adversary the gossip fast path
        // completes for everyone, so the LL/SC fallback never fires —
        // the adversary run exercises the swap/move/validate rules.
        for expected in [OpKind::Swap, OpKind::Move, OpKind::Validate] {
            assert!(kinds.contains(&expected), "missing {expected}");
        }
        // The LL/SC fallback fires under a sequential schedule instead.
        let mut e = Executor::new(
            &GossipWakeup,
            8,
            Arc::new(ZeroTosses),
            ExecutorConfig::default(),
        );
        e.drive(&mut SequentialScheduler::new(), 1_000_000).unwrap();
        let fallback_kinds: std::collections::BTreeSet<OpKind> = e
            .run()
            .events()
            .iter()
            .filter_map(|ev| match ev {
                llsc_shmem::RunEvent::SharedOp { op, .. } => Some(op.kind()),
                _ => None,
            })
            .collect();
        assert!(fallback_kinds.contains(&OpKind::Ll));
        assert!(fallback_kinds.contains(&OpKind::Sc));
        // And the adversary's move groups were scheduled secretively.
        let some_move_round = all
            .base
            .rounds
            .iter()
            .find(|r| !r.move_config.is_empty())
            .expect("gossip produces move rounds");
        assert!(llsc_core::is_secretive(
            &some_move_round.sigma,
            &some_move_round.move_config
        ));
    }

    #[test]
    fn up_tracking_handles_move_rounds() {
        let all = build_all_run(
            &GossipWakeup,
            16,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
        )
        .unwrap();
        assert!(all.up.lemma_5_1_holds());
        // Knowledge does spread through the move/validate path: someone
        // knows more than themselves well before termination.
        let mid = all.base.num_rounds() / 2;
        let spread = llsc_shmem::ProcessId::all(16)
            .map(|p| all.up.proc(p, mid).len())
            .max()
            .unwrap();
        assert!(spread > 1, "no knowledge spread by round {mid}");
    }

    #[test]
    fn sequential_schedule_falls_back_to_counting() {
        // Under a sequential schedule gossip cannot complete; the counter
        // fallback keeps the algorithm correct.
        let mut e = Executor::new(
            &GossipWakeup,
            5,
            Arc::new(ZeroTosses),
            ExecutorConfig::default(),
        );
        e.drive(&mut SequentialScheduler::new(), 1_000_000).unwrap();
        assert!(e.all_terminated());
        let check = check_wakeup(e.run());
        assert!(check.ok(), "{check}");
        // The last process wins via the counter.
        assert_eq!(check.first_winner(), Some(llsc_shmem::ProcessId(4)));
    }

    #[test]
    fn random_schedules_stay_correct() {
        for seed in 0..10 {
            let mut e = Executor::new(
                &GossipWakeup,
                7,
                Arc::new(ZeroTosses),
                ExecutorConfig::default(),
            );
            e.drive(&mut RandomScheduler::new(seed), 1_000_000).unwrap();
            assert!(e.all_terminated(), "seed={seed}");
            assert!(check_wakeup(e.run()).ok(), "seed={seed}");
        }
    }

    #[test]
    fn meets_the_lower_bound() {
        for n in [4, 16, 64] {
            let rep = verify_lower_bound(
                &GossipWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(rep.bound_holds, "n={n}");
            assert!(rep.refutation.is_none());
        }
    }

    #[test]
    fn fast_path_round_count_is_logarithmic() {
        // Regression: the gossip fast path must complete in 1 + 3·dims
        // rounds for every n (an announce/inbox register collision at
        // n > 300 once silently degraded large n to the Θ(n) counting
        // fallback).
        for n in [8usize, 256, 512, 1024] {
            let cfg = AdversaryConfig {
                track_up_history: false,
                ..AdversaryConfig::default()
            };
            let all = build_all_run(&GossipWakeup, n, Arc::new(ZeroTosses), &cfg).unwrap();
            let dims = n.next_power_of_two().trailing_zeros().max(1) as usize;
            assert!(
                all.base.num_rounds() <= 1 + 3 * dims + 2,
                "n={n}: {} rounds (fallback fired?)",
                all.base.num_rounds()
            );
        }
    }

    #[test]
    fn bit_helpers() {
        let mut k = own_bits(ProcessId(3), 8);
        merge(&mut k, &Value::bits(own_bits(ProcessId(7), 8)));
        assert!(!is_full(&k, 8));
        for p in 0..8 {
            merge(&mut k, &Value::bits(own_bits(ProcessId(p), 8)));
        }
        assert!(is_full(&k, 8));
        // Merging a non-bits value is a no-op.
        merge(&mut k, &Value::Unit);
        assert!(is_full(&k, 8));
    }
}
