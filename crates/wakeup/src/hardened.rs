//! Fault-hardened wakeup algorithms: retry/backoff against the memory-fault
//! adversary.
//!
//! Under the seeded [`FaultPlan`](llsc_shmem::FaultPlan) adversary, two
//! things can go wrong that the paper's strong LL/SC model rules out:
//!
//! * a **spurious SC failure** — the weak-LL/SC semantics of real hardware:
//!   an SC whose reservation was intact nevertheless fails;
//! * **transient register corruption** — a register's value is silently
//!   replaced between two accesses.
//!
//! The algorithms here are hardened twins of [`CounterWakeup`],
//! [`RandomizedCounterWakeup`] and [`TournamentWakeup`]
//! (`crate::{CounterWakeup, RandomizedCounterWakeup, TournamentWakeup}`)
//! built around two ideas, both **zero-cost when no fault fires** — the
//! acceptance bar for this layer is that at fault rate 0 they perform
//! *exactly* the same shared-access sequence as their unhardened twins:
//!
//! 1. **Free detection.** Every datum an SC or swap already returns is
//!    cross-checked against what a fault-free run could produce. For the
//!    counter, a failed `SC(COUNTER, basis + 1)` in a fault-free run always
//!    observes a current value `c` with `basis < c ≤ n` (every successful
//!    SC after our LL installs a strictly larger count, and the counter
//!    never exceeds `n`); observing `c == basis` is the signature of a
//!    spurious failure, and anything else is corruption. For the
//!    tournament, every parked bitset is sealed with its
//!    [`Value::fingerprint`] checksum, so a corrupted meeting point is
//!    recognised on receipt.
//! 2. **Bounded backoff on detection.** A detected fault triggers up to
//!    [`BACKOFF_CAP`] scratch-register reads before the retry — enough to
//!    space out retries under a fault burst, cheap enough to keep the
//!    degradation curves of experiment E16 interpretable.
//!
//! Detections are reported out-of-band: a process that detected at least
//! one fault swaps its count into [`hardened_detect_reg`]`(pid)` just
//! before returning. A fault-free run never touches the telemetry
//! registers, preserving the zero-cost property; the E16 harness reads
//! them to split wrong answers into *detected* and *silent*.

use crate::tournament::{
    is_full, leaf_slots, node_reg, or_bits, own_bits, subtree_nonempty, DONE_REG,
};
use llsc_shmem::dsl::{done, ll, read, sc, swap, toss, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

/// The shared counter register (same as [`crate::CounterWakeup`]).
const COUNTER: RegisterId = RegisterId(0);
/// Scratch registers for the randomized warm-up (same as
/// [`crate::RandomizedCounterWakeup`]).
const SCRATCH_BASE: u64 = 200;
/// Base of the detection-telemetry registers: `DETECT_BASE + pid`.
pub const DETECT_BASE: u64 = 900;
/// Base of the backoff scratch registers.
const BACKOFF_BASE: u64 = 960;
/// Maximum backoff reads before a detected-fault retry.
pub const BACKOFF_CAP: u64 = 3;

/// The telemetry register process `pid` swaps its detection count into —
/// touched only when at least one fault was detected.
pub fn hardened_detect_reg(pid: ProcessId) -> RegisterId {
    RegisterId(DETECT_BASE + pid.0 as u64)
}

fn backoff_reg(pid: ProcessId) -> RegisterId {
    RegisterId(BACKOFF_BASE + pid.0 as u64 % 16)
}

/// `steps` reads of the process's backoff scratch register, then `then`.
fn backoff(pid: ProcessId, steps: u64, then: impl FnOnce() -> Step + 'static) -> Step {
    if steps == 0 {
        then()
    } else {
        read(backoff_reg(pid), move |_| backoff(pid, steps - 1, then))
    }
}

/// Terminates with `verdict`, publishing the detection count first iff any
/// fault was detected (so fault-free runs terminate exactly like the
/// unhardened twins).
fn finish(pid: ProcessId, verdict: i64, detections: u64) -> Step {
    if detections == 0 {
        done(Value::from(verdict))
    } else {
        swap(
            hardened_detect_reg(pid),
            Value::from(detections as i64),
            move |_| done(Value::from(verdict)),
        )
    }
}

/// The hardened counter attempt loop shared by the deterministic and
/// randomized variants.
fn counter_attempt(pid: ProcessId, n: usize, detections: u64) -> Step {
    ll(COUNTER, move |prev| {
        // Validate the basis: a fault-free counter is ⊥ or in 0..n.
        let (basis, detections) = match prev.as_int() {
            Some(v) if (0..n as i128).contains(&v) => (v, detections),
            Some(v) => (v.clamp(0, n as i128 - 1), detections + 1),
            None if prev.is_unit() => (0, detections),
            None => (0, detections + 1),
        };
        sc(COUNTER, Value::from(basis + 1), move |ok, cur| {
            if ok {
                finish(pid, i64::from(basis + 1 == n as i128), detections)
            } else {
                // Diagnose the failure from the value the SC already
                // returned (free): a legitimate loss observes
                // basis < cur ≤ n; cur == basis is a spurious failure,
                // anything else is corruption.
                let legit = cur.as_int().is_some_and(|c| basis < c && c <= n as i128);
                if legit {
                    counter_attempt(pid, n, detections)
                } else {
                    let d = detections + 1;
                    backoff(pid, d.min(BACKOFF_CAP), move || counter_attempt(pid, n, d))
                }
            }
        })
    })
}

/// Hardened [`CounterWakeup`](crate::CounterWakeup): the one-shot LL/SC
/// increment with spurious-failure/corruption diagnosis on every failed SC
/// and bounded backoff on detection. Identical shared-access sequence to
/// the unhardened counter when no fault fires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HardenedCounterWakeup;

impl Algorithm for HardenedCounterWakeup {
    fn name(&self) -> &'static str {
        "hardened-counter-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        counter_attempt(pid, n, 0).into_program()
    }
}

/// Hardened [`RandomizedCounterWakeup`](crate::RandomizedCounterWakeup):
/// the same coin-tossed scratch warm-up followed by the hardened counter
/// loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HardenedRandomizedCounterWakeup;

impl Algorithm for HardenedRandomizedCounterWakeup {
    fn name(&self) -> &'static str {
        "hardened-randomized-counter-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        toss(move |c| {
            let scratch = RegisterId(SCRATCH_BASE + c % 4);
            ll(scratch, move |_| counter_attempt(pid, n, 0))
        })
        .into_program()
    }
}

/// Seals a tournament bitset with its structural checksum, so a meeting
/// point corrupted in place is recognised on receipt.
fn park_value(bits: Vec<u64>) -> Value {
    let payload = Value::bits(bits);
    let fp = payload.fingerprint();
    Value::tuple([payload, Value::from(fp)])
}

/// Validates and unwraps a sealed bitset; `None` means the parked value
/// does not checksum — it was corrupted.
fn unpark(v: &Value) -> Option<Vec<u64>> {
    let items = v.as_tuple()?;
    if items.len() != 2 {
        return None;
    }
    let fp = items[1].as_int()?;
    if fp != i128::from(items[0].fingerprint()) {
        return None;
    }
    Some(items[0].as_bits()?.to_vec())
}

fn hardened_climb(pid: ProcessId, n: usize, child: u64, bits: Vec<u64>, detections: u64) -> Step {
    if child == 1 {
        // Survived every meeting. In a fault-free run the bitset covers
        // everyone; an incomplete bitset here means some meeting's payload
        // was lost to corruption — report 0 (degraded-safe) and flag it.
        let complete = is_full(&bits, n);
        let detections = if complete {
            detections
        } else {
            detections.max(1)
        };
        let verdict = i64::from(complete);
        return swap(DONE_REG, park_value(bits), move |_| {
            finish(pid, verdict, detections)
        });
    }
    let v = child / 2;
    let sibling = child ^ 1;
    if !subtree_nonempty(sibling, n) {
        return hardened_climb(pid, n, v, bits, detections);
    }
    swap(node_reg(v), park_value(bits.clone()), move |received| {
        if received.is_unit() {
            // First at the meeting point: lose, leave the sealed bits
            // parked for the sibling leader.
            finish(pid, 0, detections)
        } else {
            match unpark(&received) {
                Some(parked) => hardened_climb(pid, n, v, or_bits(&bits, &parked), detections),
                None => {
                    // The parked payload was corrupted in place: the
                    // sibling group's bits are unrecoverable. Back off and
                    // climb with our own bits only — an incomplete final
                    // bitset yields verdict 0, never a false win.
                    let d = detections + 1;
                    backoff(pid, d.min(BACKOFF_CAP), move || {
                        hardened_climb(pid, n, v, bits, d)
                    })
                }
            }
        }
    })
}

/// Hardened [`TournamentWakeup`](crate::TournamentWakeup): every parked
/// bitset is sealed with its [`Value::fingerprint`] checksum, a corrupted
/// meeting point is detected on receipt (never absorbed), and the final
/// leader only claims victory for a bitset that provably covers all `n`
/// processes. Identical shared-access sequence to the unhardened
/// tournament when no fault fires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HardenedTournamentWakeup;

impl Algorithm for HardenedTournamentWakeup {
    fn name(&self) -> &'static str {
        "hardened-tournament-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        let leaf = leaf_slots(n) + pid.0 as u64;
        hardened_climb(pid, n, leaf, own_bits(pid, n), 0).into_program()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{build_all_run, check_wakeup, AdversaryConfig};
    use llsc_shmem::{
        Executor, ExecutorConfig, FaultPlan, RandomScheduler, RoundRobinScheduler, RunOutcome,
        SeededTosses, ZeroTosses,
    };
    use std::sync::Arc;

    fn drive_round_robin(alg: &dyn Algorithm, n: usize, plan: FaultPlan) -> Executor {
        let mut e = Executor::new(alg, n, Arc::new(ZeroTosses), ExecutorConfig::default());
        e.set_fault_plan(plan);
        e.drive(&mut RoundRobinScheduler::new(), 1_000_000).unwrap();
        e
    }

    #[test]
    fn hardened_algorithms_satisfy_wakeup_fault_free() {
        for alg in crate::hardened_algorithms() {
            for n in [1, 2, 3, 5, 8, 16] {
                let all = build_all_run(
                    alg.as_ref(),
                    n,
                    Arc::new(SeededTosses::new(7)),
                    &AdversaryConfig::default(),
                )
                .unwrap();
                assert!(all.base.completed, "{} n={n}", alg.name());
                let check = check_wakeup(&all.base.run);
                assert!(check.ok(), "{} n={n}: {check}", alg.name());
            }
        }
    }

    #[test]
    fn hardened_algorithms_satisfy_wakeup_under_random_schedules() {
        for alg in crate::hardened_algorithms() {
            for seed in 0..8 {
                let mut e = Executor::new(
                    alg.as_ref(),
                    6,
                    Arc::new(SeededTosses::new(seed)),
                    ExecutorConfig::default(),
                );
                e.drive(&mut RandomScheduler::new(seed), 1_000_000).unwrap();
                assert!(e.all_terminated(), "{} seed={seed}", alg.name());
                assert!(check_wakeup(e.run()).ok(), "{} seed={seed}", alg.name());
            }
        }
    }

    #[test]
    fn hardening_is_zero_cost_without_faults() {
        // At fault rate 0 each hardened twin performs exactly the same
        // shared-access counts as the unhardened original, per process.
        let pairs: Vec<(Box<dyn Algorithm>, Box<dyn Algorithm>)> = vec![
            (
                Box::new(crate::CounterWakeup),
                Box::new(HardenedCounterWakeup),
            ),
            (
                Box::new(crate::TournamentWakeup),
                Box::new(HardenedTournamentWakeup),
            ),
            (
                Box::new(crate::RandomizedCounterWakeup),
                Box::new(HardenedRandomizedCounterWakeup),
            ),
        ];
        for (plain, hard) in &pairs {
            for n in [1, 2, 3, 5, 8, 13] {
                for seed in [0u64, 5] {
                    let run = |alg: &dyn Algorithm| {
                        let mut e = Executor::new(
                            alg,
                            n,
                            Arc::new(SeededTosses::new(seed)),
                            ExecutorConfig::default(),
                        );
                        e.drive(&mut RoundRobinScheduler::new(), 1_000_000).unwrap();
                        assert!(e.all_terminated());
                        e
                    };
                    let a = run(plain.as_ref());
                    let b = run(hard.as_ref());
                    for p in ProcessId::all(n) {
                        assert_eq!(
                            a.run().shared_steps(p),
                            b.run().shared_steps(p),
                            "{} vs {} n={n} seed={seed} {p}",
                            plain.name(),
                            hard.name()
                        );
                        assert_eq!(a.verdict(p), b.verdict(p));
                    }
                    assert_eq!(
                        a.memory().stats().total(),
                        b.memory().stats().total(),
                        "{} n={n} seed={seed}",
                        hard.name()
                    );
                    // And the telemetry registers are never touched.
                    for p in ProcessId::all(n) {
                        assert!(b.memory().peek(hardened_detect_reg(p)).is_unit());
                    }
                }
            }
        }
    }

    #[test]
    fn counter_recovers_from_spurious_sc_and_reports_the_detection() {
        // Event 1 is p0's SC (event 0 its LL); suppressing it forces the
        // hardened diagnosis path: cur == basis ⇒ spurious ⇒ backoff+retry.
        let e = drive_round_robin(&HardenedCounterWakeup, 3, FaultPlan::at([1], [], 9));
        assert_eq!(
            e.run_outcome(),
            RunOutcome::FaultInjected {
                spurious_sc: 1,
                corruptions: 0
            }
        );
        assert!(check_wakeup(e.run()).ok(), "recovered to a correct answer");
        let detections: i128 = ProcessId::all(3)
            .map(|p| {
                e.memory()
                    .peek(hardened_detect_reg(p))
                    .as_int()
                    .unwrap_or(0)
            })
            .sum();
        assert!(detections >= 1, "the victim published its detection");
    }

    #[test]
    fn spurious_failures_never_break_counter_correctness() {
        for seed in 0..10u64 {
            let e = drive_round_robin(&HardenedCounterWakeup, 5, FaultPlan::seeded(seed, 3, 0, 40));
            assert!(e.all_terminated(), "seed={seed}");
            assert!(check_wakeup(e.run()).ok(), "seed={seed}: value-preserving");
        }
    }

    #[test]
    fn tournament_detects_a_corrupted_meeting_point() {
        // n = 2 under round-robin: p0 parks its sealed bits at node 1
        // (event 0), then the corruption rewrites node 1 just before p1's
        // swap (event 1 observes it). p1 must reject the payload, report a
        // detection, and settle for verdict 0 — degraded, never wrong.
        let e = drive_round_robin(
            &HardenedTournamentWakeup,
            2,
            FaultPlan::at([], [(1, false)], 17),
        );
        assert!(e.all_terminated());
        assert_eq!(
            e.run_outcome(),
            RunOutcome::FaultInjected {
                spurious_sc: 0,
                corruptions: 1
            }
        );
        let detections: i128 = ProcessId::all(2)
            .map(|p| {
                e.memory()
                    .peek(hardened_detect_reg(p))
                    .as_int()
                    .unwrap_or(0)
            })
            .sum();
        assert!(detections >= 1, "corruption was detected, not absorbed");
        // No process may claim a win it cannot prove.
        for p in ProcessId::all(2) {
            assert_ne!(
                e.verdict(p),
                Some(&Value::from(1i64)),
                "{p} must not claim victory over a corrupted bitset"
            );
        }
    }

    #[test]
    fn sealed_parks_round_trip_and_reject_tampering() {
        let sealed = park_value(vec![0b1011, 7]);
        assert_eq!(unpark(&sealed), Some(vec![0b1011, 7]));
        // Tamper with the payload: checksum mismatch.
        let items = sealed.as_tuple().unwrap();
        let forged = Value::tuple([Value::bits(vec![0b1111, 7]), items[1].clone()]);
        assert_eq!(unpark(&forged), None);
        // Plain (unsealed) bits are rejected too.
        assert_eq!(unpark(&Value::bits(vec![1])), None);
        assert_eq!(unpark(&Value::from(3i64)), None);
        assert_eq!(unpark(&Value::Unit), None);
    }

    #[test]
    fn backoff_is_bounded_and_proportional() {
        // A fault burst cannot make the backoff unbounded: the scratch
        // reads per retry are capped at BACKOFF_CAP.
        for seed in 0..6u64 {
            let e = drive_round_robin(&HardenedCounterWakeup, 4, FaultPlan::seeded(seed, 8, 0, 64));
            assert!(e.all_terminated(), "seed={seed}");
            let spurious = e.fault_stats().spurious_sc;
            // Each spurious failure costs at most BACKOFF_CAP reads plus
            // one LL/SC retry beyond the fault-free baseline.
            let baseline = 4 * (2 * 4) as u64; // generous fault-free bound
            assert!(
                e.memory().stats().total() <= baseline + spurious * (BACKOFF_CAP + 2),
                "seed={seed}: retries stay bounded"
            );
        }
    }
}
