//! # llsc-wakeup: wakeup algorithms and the Theorem 6.2 reductions
//!
//! The wakeup problem (Section 1.1 of Jayanti PODC'98) asks every process
//! to terminate returning 0/1 such that, in terminating runs, someone
//! returns 1 — and only after every process has taken a step. This crate
//! supplies the concrete algorithms the lower-bound machinery of
//! [`llsc_core`] is exercised against:
//!
//! * **Correct solutions** — [`CounterWakeup`] and [`BitsetWakeup`]
//!   (simple, `Θ(n)` worst case), [`TournamentWakeup`] (winner cost
//!   `⌈log₂ n⌉ + 1`, within a factor ~2 of the `log₄ n` lower bound: the
//!   bound is essentially tight for wakeup itself), and [`GossipWakeup`]
//!   (exercises swap, move, and validate — the full five-operation memory —
//!   under the adversary).
//! * **Randomized solutions** — [`RandomizedCounterWakeup`] and
//!   [`BackoffWakeup`], with genuine coin tosses on the execution path,
//!   for the expected-complexity experiments (Lemma 3.1).
//! * **Fault-hardened solutions** — [`HardenedCounterWakeup`],
//!   [`HardenedRandomizedCounterWakeup`] and [`HardenedTournamentWakeup`]:
//!   twins of the corresponding algorithms above that diagnose spurious SC
//!   failures and register corruption (the [`llsc_shmem::FaultPlan`]
//!   adversary) with free checks and checksummed payloads, retry with
//!   bounded backoff, and publish detections to telemetry registers —
//!   at zero extra shared-access cost when no fault fires.
//! * **Strawmen** — [`PrematureWakeup`], [`SilentWakeup`],
//!   [`HalfCountWakeup`], [`NoStepWakeup`]: deliberately broken algorithms
//!   that the Theorem 6.1 driver refutes (constructing the `(S, A)`-run
//!   counterexample where applicable).
//! * **Reductions** — [`ObjectWakeup`] implements all eight Theorem 6.2
//!   wakeup-from-object reductions ([`ReductionKind`]) over any
//!   [`llsc_universal::ObjectImplementation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitset;
mod counter_alg;
mod gossip;
mod hardened;
mod randomized;
mod recoverable;
mod reductions;
mod strawman;
mod tournament;

pub use bitset::BitsetWakeup;
pub use counter_alg::CounterWakeup;
pub use gossip::GossipWakeup;
pub use hardened::{
    hardened_detect_reg, HardenedCounterWakeup, HardenedRandomizedCounterWakeup,
    HardenedTournamentWakeup, BACKOFF_CAP, DETECT_BASE,
};
pub use randomized::{BackoffWakeup, RandomizedCounterWakeup};
pub use recoverable::{
    check_mutex_tokens, RecoverableCounterWakeup, RecoverableMutex, RecoverableRandCounterWakeup,
};
pub use reductions::{ObjectWakeup, ReductionKind};
pub use strawman::{HalfCountWakeup, NoStepWakeup, PrematureWakeup, SilentWakeup};
pub use tournament::TournamentWakeup;

use llsc_shmem::Algorithm;

/// The deterministic, correct wakeup algorithms shipped by this crate —
/// the standard sweep set for the lower-bound experiments.
pub fn correct_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(CounterWakeup),
        Box::new(BitsetWakeup),
        Box::new(TournamentWakeup),
        Box::new(GossipWakeup),
    ]
}

/// The randomized, correct wakeup algorithms (terminating with
/// probability 1 under fair coins).
pub fn randomized_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![Box::new(RandomizedCounterWakeup), Box::new(BackoffWakeup)]
}

/// The fault-hardened wakeup algorithms: twins of the counter, randomized
/// counter, and tournament solutions that detect and recover from the
/// [`llsc_shmem::FaultPlan`] adversary's spurious SC failures and register
/// corruption. The standard sweep set for experiment E16.
pub fn hardened_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(HardenedCounterWakeup),
        Box::new(HardenedRandomizedCounterWakeup),
        Box::new(HardenedTournamentWakeup),
    ]
}

/// The crash-recoverable algorithms: durable state machines whose spawn
/// path doubles as a recovery section under the
/// [`llsc_shmem::RecoveringCrashScheduler`] adversary. The standard sweep
/// set for experiment E19.
pub fn recoverable_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(RecoverableMutex),
        Box::new(RecoverableCounterWakeup),
        Box::new(RecoverableRandCounterWakeup),
    ]
}

/// The deliberately broken algorithms, for the refutation experiments.
pub fn strawman_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(PrematureWakeup),
        Box::new(SilentWakeup),
        Box::new(HalfCountWakeup),
        Box::new(NoStepWakeup),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_disjoint_and_named() {
        let mut names = std::collections::BTreeSet::new();
        for alg in correct_algorithms()
            .iter()
            .chain(randomized_algorithms().iter())
            .chain(hardened_algorithms().iter())
            .chain(recoverable_algorithms().iter())
            .chain(strawman_algorithms().iter())
        {
            assert!(names.insert(alg.name().to_string()), "dup {}", alg.name());
        }
        assert_eq!(names.len(), 16);
    }
}
