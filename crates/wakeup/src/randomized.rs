//! Randomized wakeup algorithms.
//!
//! The paper's lower bound is proved for randomized algorithms: against
//! the Figure-2 adversary (which cannot predict future coin tosses but
//! schedules after seeing the run so far), the worst-case *expected*
//! shared-access complexity is `Ω(log n)` whenever the algorithm
//! terminates with constant probability (Theorem 6.1 + Lemma 3.1).
//!
//! These algorithms put real coin tosses on the execution path so that
//! toss assignments matter: different assignments produce genuinely
//! different runs, which is what
//! [`llsc_core::estimate_expected_complexity`] averages over.

use llsc_shmem::dsl::{done, ll, sc, swap, toss, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

/// The shared counter register.
const COUNTER: RegisterId = RegisterId(0);
/// Scratch registers touched on randomly chosen warm-up paths.
const SCRATCH_BASE: u64 = 200;

/// Randomized counter wakeup: each process first tosses a coin and touches
/// a randomly chosen scratch register (a warm-up step whose only purpose
/// is to make the run depend on the coin), then runs the one-shot
/// LL/SC-increment wakeup. Terminates with probability 1; correct under
/// every scheduler.
///
/// # Examples
///
/// ```
/// use llsc_core::{estimate_expected_complexity, AdversaryConfig};
/// use llsc_wakeup::RandomizedCounterWakeup;
///
/// let rep = estimate_expected_complexity(
///     &RandomizedCounterWakeup, 8, 0..16, &AdversaryConfig::default())
///     .expect("every sampled run completes within the default budgets");
/// assert_eq!(rep.termination_rate, 1.0);
/// assert!(rep.all_meet_bound);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RandomizedCounterWakeup;

impl Algorithm for RandomizedCounterWakeup {
    fn name(&self) -> &'static str {
        "randomized-counter-wakeup"
    }

    fn spawn(&self, _pid: ProcessId, n: usize) -> Box<dyn Program> {
        fn attempt(n: usize) -> Step {
            ll(COUNTER, move |prev| {
                let v = prev.as_int().unwrap_or(0);
                sc(COUNTER, Value::from(v + 1), move |ok, _| {
                    if !ok {
                        attempt(n)
                    } else if v + 1 == n as i128 {
                        done(Value::from(1i64))
                    } else {
                        done(Value::from(0i64))
                    }
                })
            })
        }
        toss(move |c| {
            let scratch = RegisterId(SCRATCH_BASE + c % 4);
            ll(scratch, move |_| attempt(n))
        })
        .into_program()
    }
}

/// Las-Vegas backoff wakeup: a process repeatedly (a) tosses a coin and,
/// on odd outcomes, performs a "backoff" swap on a scratch register
/// instead of competing; (b) on even outcomes runs one LL/SC increment
/// attempt. Random backoff makes both the number of tosses and the number
/// of shared operations genuinely random, while termination is still
/// certain for any toss assignment in which every process eventually sees
/// an even outcome (probability 1 for fair coins; the degenerate all-odd
/// assignment diverges, so sampled termination rates can sit below 1 when
/// the round limit is tight).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackoffWakeup;

impl Algorithm for BackoffWakeup {
    fn name(&self) -> &'static str {
        "backoff-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        fn round(pid: ProcessId, n: usize) -> Step {
            toss(move |c| {
                if c % 2 == 1 {
                    let scratch = RegisterId(SCRATCH_BASE + 10 + pid.0 as u64 % 4);
                    swap(scratch, Value::from(c as i64), move |_| round(pid, n))
                } else {
                    ll(COUNTER, move |prev| {
                        let v = prev.as_int().unwrap_or(0);
                        sc(COUNTER, Value::from(v + 1), move |ok, _| {
                            if !ok {
                                round(pid, n)
                            } else if v + 1 == n as i128 {
                                done(Value::from(1i64))
                            } else {
                                done(Value::from(0i64))
                            }
                        })
                    })
                }
            })
        }
        round(pid, n).into_program()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{build_all_run, check_wakeup, estimate_expected_complexity, AdversaryConfig};
    use llsc_shmem::{SeededTosses, ZeroTosses};
    use std::sync::Arc;

    #[test]
    fn randomized_counter_is_correct_for_many_assignments() {
        for seed in 0..20 {
            let all = build_all_run(
                &RandomizedCounterWakeup,
                6,
                Arc::new(SeededTosses::new(seed)),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(all.base.completed, "seed={seed}");
            assert!(check_wakeup(&all.base.run).ok(), "seed={seed}");
        }
    }

    #[test]
    fn different_assignments_produce_different_runs() {
        let a = build_all_run(
            &RandomizedCounterWakeup,
            4,
            Arc::new(SeededTosses::new(1)),
            &AdversaryConfig::default(),
        )
        .unwrap();
        let b = build_all_run(
            &RandomizedCounterWakeup,
            4,
            Arc::new(SeededTosses::new(2)),
            &AdversaryConfig::default(),
        )
        .unwrap();
        assert_ne!(a.base.run.events(), b.base.run.events());
    }

    #[test]
    fn expected_complexity_respects_the_randomized_bound() {
        for n in [4, 16, 64] {
            let rep = estimate_expected_complexity(
                &RandomizedCounterWakeup,
                n,
                0..25,
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert_eq!(rep.termination_rate, 1.0, "n={n}");
            assert_eq!(rep.wakeup_ok_rate, 1.0, "n={n}");
            assert!(rep.all_meet_bound, "n={n}");
            assert!(rep.lemma_3_1_bound >= rep.log4_n.floor(), "n={n}");
        }
    }

    #[test]
    fn backoff_wakeup_is_correct_when_it_terminates() {
        let cfg = AdversaryConfig::default();
        let mut terminated = 0;
        for seed in 0..15 {
            let all =
                build_all_run(&BackoffWakeup, 5, Arc::new(SeededTosses::new(seed)), &cfg).unwrap();
            if all.base.completed {
                terminated += 1;
                assert!(check_wakeup(&all.base.run).ok(), "seed={seed}");
            }
        }
        assert!(
            terminated >= 10,
            "most assignments terminate: {terminated}/15"
        );
    }

    #[test]
    fn backoff_all_odd_assignment_never_competes() {
        // ConstantTosses(1) makes every coin odd: processes back off
        // forever — the run hits the round limit without terminating.
        let cfg = AdversaryConfig {
            max_rounds: 30,
            ..AdversaryConfig::default()
        };
        let all = build_all_run(
            &BackoffWakeup,
            3,
            Arc::new(llsc_shmem::ConstantTosses(1)),
            &cfg,
        )
        .unwrap();
        assert!(!all.base.completed);
    }

    #[test]
    fn zero_tosses_degenerate_to_deterministic_counter() {
        // With all-zero coins, RandomizedCounterWakeup behaves like the
        // deterministic counter preceded by one scratch LL.
        let all = build_all_run(
            &RandomizedCounterWakeup,
            4,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
        )
        .unwrap();
        assert!(all.base.completed);
        assert!(check_wakeup(&all.base.run).ok());
        for p in llsc_shmem::ProcessId::all(4) {
            assert_eq!(all.base.run.tosses(p), 1);
        }
    }
}
