//! Crash-recoverable algorithms: durable state machines for the
//! crash-*recovery* fault model.
//!
//! Under the [`llsc_shmem::RecoveringCrashScheduler`] adversary a crashed
//! process does not stay down: it is revived with its *local* state wiped
//! (program respawned from [`Algorithm::spawn`]) against the surviving
//! shared memory. The algorithms here are written so that `spawn` doubles
//! as the *recovery section* in the sense of Golab & Ramaraju's
//! recoverable mutual exclusion: every decision that must survive a crash
//! is journalled in per-process shared registers *before* the step it
//! describes, and the first thing a (re)spawned program does is consult
//! that journal to decide where it died.
//!
//! * [`RecoverableMutex`] — recoverable mutual exclusion plus a
//!   lock-protected fetch&increment: each process acquires a test&set
//!   style LL/SC lock, takes a distinct positive token from a shared
//!   counter, journals it, and releases. A crash anywhere (spinning,
//!   holding the lock mid-increment, after the token write but before the
//!   release) is repaired by the recovery section; the lock is never
//!   stranded and no token is ever issued twice.
//! * [`RecoverableCounterWakeup`] — the [`crate::CounterWakeup`]
//!   fetch&increment wakeup made idempotent under crashes with an
//!   announcement array and per-token *slot* helping registers, so a
//!   revived process can tell "my increment landed" from "my increment
//!   never happened" without ever double-incrementing.
//! * [`RecoverableRandCounterWakeup`] — the same with a tossed
//!   validate-backoff on SC failure, putting genuine coin tosses on the
//!   recovery-model execution path.
//!
//! The interesting cost of these algorithms is not their step count but
//! their *remote memory references*: recovery re-reads the journal and
//! re-validates shared state, and experiment E19 measures exactly that
//! (CC and DSM RMRs per crash intensity) via the executor's RMR counters.

use llsc_shmem::dsl::{done, fix, ll, read, sc, swap, toss, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

/// The lock register of [`RecoverableMutex`]: 0 = free, `p + 1` = held by
/// process `p`.
const LOCK: RegisterId = RegisterId(0);

/// The token counter of [`RecoverableMutex`] (guarded by [`LOCK`]).
const MUTEX_COUNT: RegisterId = RegisterId(1);

/// Process `p`'s durable journal register in [`RecoverableMutex`]:
/// 0 = no token activity, `-t` = taking token `t` (in the critical
/// section), `t > 0` = token `t` taken (critical section complete).
fn mutex_journal(pid: ProcessId) -> RegisterId {
    RegisterId(2 + pid.0 as u64)
}

/// Recoverable mutual exclusion over LL/SC, in the Golab–Ramaraju style:
/// `spawn` *is* the recovery section.
///
/// Each process runs acquire → critical section (take the next counter
/// token `t`, journalling `-t` first and `t` after) → release, and
/// returns its token. Safety is token distinctness: in any run where all
/// processes terminate, the returned tokens are exactly `{1, ..., n}`.
///
/// Crash repair, driven entirely by the journal and the lock register:
///
/// * journal `> 0` — the critical section finished; release the lock if
///   the crash stranded it, return the journalled token.
/// * journal `= -t` — died inside the critical section (so the lock is
///   still held): the counter reads `t` iff the increment landed; finish
///   the remaining writes and release. No second token is ever taken.
/// * journal `= 0` — never reached the critical section: re-acquire. If
///   the lock already names this process (crash between the successful SC
///   and the first journal write), enter the critical section directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverableMutex;

/// Last two critical-section writes + release, shared by the normal path
/// and the recovery path: journal the token as taken, free the lock,
/// return the token.
fn mutex_finish(journal: RegisterId, t: i128) -> Step {
    swap(journal, Value::from(t), move |_| {
        swap(LOCK, Value::from(0i64), move |_| done(Value::from(t)))
    })
}

/// The critical section, entered holding the lock: read the counter
/// (private while the lock is held), journal the intent `-t`, install
/// `t`, then [`mutex_finish`].
fn mutex_critical(journal: RegisterId) -> Step {
    read(MUTEX_COUNT, move |c| {
        let t = c.as_int().unwrap_or(0) + 1;
        swap(journal, Value::from(-t), move |_| {
            swap(MUTEX_COUNT, Value::from(t), move |_| {
                mutex_finish(journal, t)
            })
        })
    })
}

/// The LL/SC acquire loop. Seeing our own id in the lock means a crash
/// landed between a successful acquire-SC and the first journal write —
/// re-enter the critical section instead of spinning on ourselves.
fn mutex_acquire(me: i128, journal: RegisterId) -> Step {
    fix(
        move |(), again| {
            ll(LOCK, move |v| {
                let owner = v.as_int().unwrap_or(0);
                if owner == me {
                    mutex_critical(journal)
                } else if owner == 0 {
                    sc(LOCK, Value::from(me), move |ok, _| {
                        if ok {
                            mutex_critical(journal)
                        } else {
                            again.call(())
                        }
                    })
                } else {
                    // Spinning on a cached LL of the lock is free in the
                    // CC cost model until the holder's release invalidates
                    // the copy — the classic local-spin idiom.
                    again.call(())
                }
            })
        },
        (),
    )
}

impl Algorithm for RecoverableMutex {
    fn name(&self) -> &'static str {
        "recoverable-mutex"
    }

    fn spawn(&self, pid: ProcessId, _n: usize) -> Box<dyn Program> {
        let me = pid.0 as i128 + 1;
        let journal = mutex_journal(pid);
        // Recovery section: the journal says how far the previous
        // incarnation got.
        read(journal, move |d| {
            let d = d.as_int().unwrap_or(0);
            if d > 0 {
                // Token taken; only an unreleased lock can remain.
                read(LOCK, move |l| {
                    if l.as_int().unwrap_or(0) == me {
                        swap(LOCK, Value::from(0i64), move |_| done(Value::from(d)))
                    } else {
                        done(Value::from(d))
                    }
                })
            } else if d < 0 {
                // Died mid-critical-section, lock still held: the counter
                // decides whether the increment landed (it is private to
                // the lock holder, so it reads exactly t - 1 or t).
                let t = -d;
                read(MUTEX_COUNT, move |c| {
                    if c.as_int().unwrap_or(0) >= t {
                        mutex_finish(journal, t)
                    } else {
                        swap(MUTEX_COUNT, Value::from(t), move |_| {
                            mutex_finish(journal, t)
                        })
                    }
                })
            } else {
                mutex_acquire(me, journal)
            }
        })
        .into_program()
    }
}

/// The packed counter register of the recoverable wakeup algorithms:
/// holds `count * WAKEUP_BASE + writer` where `writer` is the id + 1 of
/// the process whose SC installed `count` (0 initially).
const WAKEUP_COUNT: RegisterId = RegisterId(0);

/// Packing base for `(count, writer)` in [`WAKEUP_COUNT`]; bounds the
/// supported process count.
const WAKEUP_BASE: i128 = 4096;

/// Process `p`'s announcement register: 0 = idle, `-t` = increment to `t`
/// announced but not yet confirmed, `t > 0` = token `t` confirmed taken.
fn ann_reg(pid: ProcessId) -> RegisterId {
    RegisterId(1 + pid.0 as u64)
}

/// The helping slot for token `t` (`1 <= t <= n`): 0 = unknown, else the
/// id + 1 of the process whose SC installed count `t`. Written only with
/// truthful values read directly out of [`WAKEUP_COUNT`].
fn slot_reg(n: usize, t: i128) -> RegisterId {
    RegisterId(n as u64 + t as u64)
}

/// Unpacks [`WAKEUP_COUNT`]'s `(count, writer)`.
fn unpack(v: Value) -> (i128, i128) {
    let x = v.as_int().unwrap_or(0);
    (x / WAKEUP_BASE, x % WAKEUP_BASE)
}

/// The wakeup verdict for a process holding token `t`: the installer of
/// count `n` saw every other process's increment land first.
fn wakeup_verdict(t: i128, n: usize) -> Step {
    done(Value::from(if t == n as i128 { 1i64 } else { 0i64 }))
}

/// Confirm token `t` in the announcement register, then return.
fn confirm(ann: RegisterId, t: i128, n: usize) -> Step {
    swap(ann, Value::from(t), move |_| wakeup_verdict(t, n))
}

/// The optimistic increment loop shared by both recoverable wakeup
/// variants. Per attempt: `LL` the packed counter, *help* by recording
/// the current count's installer in its slot (establishing the invariant
/// that the counter never advances past `t` before `SLOT(t)` is filled),
/// announce the intended token, then `SC`. With `randomized`, a failed SC
/// tosses a coin and backs off through one extra validate-read.
fn wakeup_attempt(me: i128, ann: RegisterId, n: usize, randomized: bool) -> Step {
    fix(
        move |(), again| {
            ll(WAKEUP_COUNT, move |v| {
                let (c, w) = unpack(v);
                let t = c + 1;
                let the_sc = move || {
                    swap(ann, Value::from(-t), move |_| {
                        sc(
                            WAKEUP_COUNT,
                            Value::from(t * WAKEUP_BASE + me),
                            move |ok, _| {
                                if ok {
                                    confirm(ann, t, n)
                                } else if randomized {
                                    toss(move |coin| {
                                        if coin % 2 == 1 {
                                            read(WAKEUP_COUNT, move |_| again.call(()))
                                        } else {
                                            again.call(())
                                        }
                                    })
                                } else {
                                    again.call(())
                                }
                            },
                        )
                    })
                };
                if c >= 1 {
                    swap(slot_reg(n, c), Value::from(w), move |_| the_sc())
                } else {
                    the_sc()
                }
            })
        },
        (),
    )
}

/// The shared recovery section of both recoverable wakeup variants:
/// disambiguate an in-flight announcement `-t` using the packed counter
/// and the slot array.
///
/// If this process's SC for `t` succeeded, then *forever after* either
/// the counter still reads `(t, me)` or — once someone advanced it, which
/// requires helping `SLOT(t) := me` first — the slot names this process.
/// Seeing neither therefore proves the increment never landed, and
/// retrying cannot double-increment.
fn wakeup_recover(me: i128, ann: RegisterId, n: usize, randomized: bool) -> Step {
    read(ann, move |a| {
        let a = a.as_int().unwrap_or(0);
        if a > 0 {
            wakeup_verdict(a, n)
        } else if a < 0 {
            let t = -a;
            read(WAKEUP_COUNT, move |v| {
                let (c, w) = unpack(v);
                if c == t && w == me {
                    confirm(ann, t, n)
                } else {
                    read(slot_reg(n, t), move |s| {
                        if s.as_int().unwrap_or(0) == me {
                            confirm(ann, t, n)
                        } else {
                            wakeup_attempt(me, ann, n, randomized)
                        }
                    })
                }
            })
        } else {
            wakeup_attempt(me, ann, n, randomized)
        }
    })
}

/// Asserts the packed-counter encoding can distinguish every process.
fn assert_packable(n: usize) {
    assert!(
        n < WAKEUP_BASE as usize,
        "recoverable wakeup supports at most {} processes, got {n}",
        WAKEUP_BASE - 1
    );
}

/// The crash-recoverable counter wakeup: [`crate::CounterWakeup`]'s
/// fetch&increment, made idempotent under the crash-recovery adversary.
///
/// Registers: the packed `(count, writer)` counter at `R0`, announcement
/// registers `R1..=Rn`, and helping slots `R(n+1)..=R(2n)`. Every process
/// increments the counter exactly once even across repeated crashes; the
/// process whose increment installs `n` returns 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverableCounterWakeup;

impl Algorithm for RecoverableCounterWakeup {
    fn name(&self) -> &'static str {
        "recoverable-counter-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        assert_packable(n);
        wakeup_recover(pid.0 as i128 + 1, ann_reg(pid), n, false).into_program()
    }
}

/// [`RecoverableCounterWakeup`] with a tossed validate-backoff on SC
/// failure: half the retries (by fair coin) re-read the counter before
/// looping, so the recovery experiments exercise genuine randomness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverableRandCounterWakeup;

impl Algorithm for RecoverableRandCounterWakeup {
    fn name(&self) -> &'static str {
        "recoverable-rand-counter-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        assert_packable(n);
        wakeup_recover(pid.0 as i128 + 1, ann_reg(pid), n, true).into_program()
    }
}

/// Checks [`RecoverableMutex`]'s safety property on a finished run's
/// verdicts: every verdict is an integer token, and in fully-terminated
/// runs the tokens are exactly `{1, ..., n}` (distinctness is the mutual
/// exclusion witness). Returns `Err` with a diagnostic on violation.
pub fn check_mutex_tokens<'a, I>(verdicts: I, n: usize) -> Result<(), String>
where
    I: IntoIterator<Item = Option<&'a Value>>,
{
    let mut tokens = Vec::new();
    for (i, v) in verdicts.into_iter().enumerate() {
        let Some(v) = v else { continue };
        match v.as_int() {
            Some(t) if t >= 1 && t <= n as i128 => tokens.push((t, i)),
            _ => return Err(format!("process {i} returned non-token verdict {v}")),
        }
    }
    let complete = tokens.len() == n;
    tokens.sort_unstable();
    for pair in tokens.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(format!(
                "token {} issued to both p{} and p{}",
                pair[0].0, pair[0].1, pair[1].1
            ));
        }
    }
    if complete {
        for (want, &(got, _)) in (1..=n as i128).zip(tokens.iter()) {
            if got != want {
                return Err(format!("token set has a hole: expected {want}, saw {got}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::check_wakeup;
    use llsc_shmem::{
        CrashPlan, Executor, ExecutorConfig, RandomScheduler, RecoveringCrashScheduler,
        RoundRobinScheduler, RunOutcome, SeededTosses, ZeroTosses,
    };
    use std::sync::Arc;

    fn fresh(alg: &dyn Algorithm, n: usize) -> Executor {
        Executor::new(alg, n, Arc::new(ZeroTosses), ExecutorConfig::default())
    }

    fn tokens_of(e: &Executor, n: usize) -> Vec<i128> {
        let mut t: Vec<i128> = (0..n)
            .filter_map(|i| e.verdict(ProcessId(i)))
            .filter_map(Value::as_int)
            .collect();
        t.sort_unstable();
        t
    }

    #[test]
    fn mutex_issues_distinct_tokens_without_crashes() {
        for n in [1, 2, 5, 8] {
            let mut e = fresh(&RecoverableMutex, n);
            e.drive(&mut RoundRobinScheduler::new(), 1_000_000).unwrap();
            assert_eq!(e.run_outcome(), RunOutcome::Completed, "n={n}");
            assert_eq!(tokens_of(&e, n), (1..=n as i128).collect::<Vec<_>>());
            check_mutex_tokens((0..n).map(|i| e.verdict(ProcessId(i))), n).unwrap();
        }
    }

    #[test]
    fn mutex_survives_crash_recovery_with_repeated_crashes() {
        let n = 4;
        for seed in 0..8 {
            let alg = RecoverableMutex;
            let mut e = fresh(&alg, n);
            let plan = CrashPlan::seeded(seed, n, 2, 24);
            let mut sched = RecoveringCrashScheduler::new(RandomScheduler::new(seed), &plan, 3, 2);
            sched.drive(&mut e, &alg, 1_000_000).unwrap();
            assert_eq!(e.run_outcome(), RunOutcome::Completed, "seed={seed}");
            assert_eq!(
                tokens_of(&e, n),
                (1..=n as i128).collect::<Vec<_>>(),
                "seed={seed}: a crash leaked or duplicated a token"
            );
            assert_eq!(
                e.memory().peek(MUTEX_COUNT).as_int(),
                Some(n as i128),
                "seed={seed}: increments must land exactly once each"
            );
        }
    }

    #[test]
    fn mutex_recovery_releases_a_stranded_lock() {
        // Crash p0 the moment it can hold the lock; the run completes only
        // if recovery repairs the critical section and frees the lock.
        let alg = RecoverableMutex;
        let n = 3;
        for at in 0..12 {
            let mut e = fresh(&alg, n);
            let plan = CrashPlan::at([(ProcessId(0), at)]);
            let mut sched = RecoveringCrashScheduler::new(RoundRobinScheduler::new(), &plan, 4, 1);
            sched.drive(&mut e, &alg, 1_000_000).unwrap();
            assert_eq!(e.run_outcome(), RunOutcome::Completed, "crash at {at}");
            assert_eq!(tokens_of(&e, n), vec![1, 2, 3], "crash at {at}");
            assert_eq!(e.memory().peek(LOCK).as_int().unwrap_or(0), 0, "lock freed");
        }
    }

    #[test]
    fn recoverable_wakeup_satisfies_wakeup_without_crashes() {
        for n in [1, 2, 3, 6, 9] {
            let mut e = fresh(&RecoverableCounterWakeup, n);
            e.drive(&mut RoundRobinScheduler::new(), 1_000_000).unwrap();
            assert_eq!(e.run_outcome(), RunOutcome::Completed, "n={n}");
            let check = check_wakeup(e.run());
            assert!(check.ok(), "n={n}: {check}");
            assert_eq!(check.winners.len(), 1, "n={n}");
        }
    }

    #[test]
    fn recoverable_wakeup_survives_crash_recovery() {
        let n = 5;
        for seed in 0..8 {
            let alg = RecoverableCounterWakeup;
            let mut e = fresh(&alg, n);
            let plan = CrashPlan::seeded(seed, n, 2, 32);
            let mut sched = RecoveringCrashScheduler::new(RandomScheduler::new(seed), &plan, 4, 2);
            sched.drive(&mut e, &alg, 1_000_000).unwrap();
            assert_eq!(e.run_outcome(), RunOutcome::Completed, "seed={seed}");
            let check = check_wakeup(e.run());
            assert!(check.ok(), "seed={seed}: {check}");
            assert_eq!(
                check.winners.len(),
                1,
                "seed={seed}: crashes must not forge or lose the winner"
            );
        }
    }

    #[test]
    fn randomized_variant_stays_correct_and_actually_tosses() {
        let n = 6;
        let mut tossed = 0u64;
        for seed in 0..8 {
            let alg = RecoverableRandCounterWakeup;
            let mut e = Executor::new(
                &alg,
                n,
                Arc::new(SeededTosses::new(seed)),
                ExecutorConfig::default(),
            );
            let plan = CrashPlan::seeded(seed, n, 2, 32);
            let mut sched =
                RecoveringCrashScheduler::new(RandomScheduler::new(seed ^ 0x9E37), &plan, 4, 2);
            sched.drive(&mut e, &alg, 1_000_000).unwrap();
            assert_eq!(e.run_outcome(), RunOutcome::Completed, "seed={seed}");
            let check = check_wakeup(e.run());
            assert!(check.ok(), "seed={seed}: {check}");
            tossed += (0..n).map(|i| e.run().tosses(ProcessId(i))).sum::<u64>();
        }
        assert!(tossed > 0, "the backoff coin is on the execution path");
    }

    #[test]
    fn recovery_runs_are_deterministic() {
        let run_once = |alg: &dyn Algorithm| {
            let n = 5;
            let mut e = Executor::new(
                alg,
                n,
                Arc::new(SeededTosses::new(13)),
                ExecutorConfig::default(),
            );
            let plan = CrashPlan::seeded(13, n, 3, 24);
            let mut sched = RecoveringCrashScheduler::new(RandomScheduler::new(13), &plan, 3, 2);
            sched.drive(&mut e, alg, 1_000_000).unwrap();
            (e.run().events().to_vec(), e.run_outcome())
        };
        assert_eq!(run_once(&RecoverableMutex), run_once(&RecoverableMutex));
        assert_eq!(
            run_once(&RecoverableRandCounterWakeup),
            run_once(&RecoverableRandCounterWakeup)
        );
    }

    #[test]
    fn check_mutex_tokens_flags_duplicates_and_holes() {
        let one = Value::from(1i64);
        let two = Value::from(2i64);
        let dup = [Some(&one), Some(&one)];
        assert!(check_mutex_tokens(dup, 2).unwrap_err().contains("both"));
        let hole = [Some(&two), Some(&two)];
        assert!(check_mutex_tokens(hole, 2).is_err());
        let partial = [Some(&two), None];
        assert!(
            check_mutex_tokens(partial, 2).is_ok(),
            "a crashed run may have issued any subset of tokens"
        );
    }
}
