//! The Theorem 6.2 reductions: wakeup from a single shared object.
//!
//! Theorem 6.2's recipe: if type `T` lets `n` processes solve wakeup with
//! at most `k` operations each on one linearizable `T` object, then *any*
//! randomized linearizable implementation of `T` from
//! LL/SC/validate/move/swap memory inherits the `(1/k)·c·log₄ n` wakeup
//! lower bound (Corollary 6.1). This module contains, executably, every
//! reduction the paper lists:
//!
//! | [`ReductionKind`] | object (per `n`) | per-process op(s) | winner's evidence |
//! |---|---|---|---|
//! | `FetchIncrement` | `k ≥ log n`-bit fetch&increment, init 0 | `fetch&increment()` | response `n-1` |
//! | `FetchAnd` | `n`-bit fetch&and, init all-ones | clear own bit | response has only own bit set |
//! | `FetchOr` | `n`-bit fetch&or, init 0 | set own bit | response has all bits but its own |
//! | `FetchComplement` | `n`-bit fetch&complement, init 0 | flip own bit | response has all bits but its own |
//! | `FetchMultiply` | `n`-bit fetch&multiply, init 1 | `fetch&multiply(2)` | response `2^(n-1)` |
//! | `Queue` | queue holding `1..=n` | `dequeue()` | response `n` |
//! | `Stack` | stack with `n` at the bottom | `pop()` | response `n` |
//! | `ReadIncrement` | `k ≥ log n`-bit counter | `increment(); read()` | read `n` (two ops: `k = 2`) |
//!
//! For `FetchMultiply` the paper's decision rule ("if the response is 0,
//! return 1") matches a `k = n - 1`-bit object, where the `n`-th doubling's
//! *previous value* has already wrapped; with the theorem's stated
//! `k ≥ n` bits the equivalent rule is "response = 2^(n-1)", which is what
//! we implement (recorded in DESIGN.md).
//!
//! A [`ObjectWakeup`] instance plugs any
//! [`llsc_universal::ObjectImplementation`] under the reduction, so the
//! same wakeup algorithm can be run over the direct LL/SC object, the
//! Herlihy construction, or the ADT tree — experiment E7 sweeps them all.

use llsc_objects::{
    bits, Counter, FetchAnd, FetchComplement, FetchIncrement, FetchMultiply, FetchOr, ObjectSpec,
    Queue, Stack,
};
use llsc_shmem::dsl::{done, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};
use llsc_universal::{DirectLlSc, ObjectImplementation};
use std::fmt;
use std::sync::Arc;

/// The object types Theorem 6.2 derives the lower bound for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReductionKind {
    /// Case 1: `k`-bit fetch&increment, `k ≥ log n`.
    FetchIncrement,
    /// Case 2: `n`-bit fetch&and.
    FetchAnd,
    /// Case 2: `n`-bit fetch&or.
    FetchOr,
    /// Case 2: `n`-bit fetch&complement.
    FetchComplement,
    /// Case 2: `n`-bit fetch&multiply.
    FetchMultiply,
    /// Case 3: a queue initially holding `n` items.
    Queue,
    /// Case 3: a stack initially holding `n` items.
    Stack,
    /// Case 4: read + ack-only increment (two operations per process).
    ReadIncrement,
}

impl ReductionKind {
    /// All eight reductions, in the paper's order.
    pub fn all() -> [ReductionKind; 8] {
        [
            ReductionKind::FetchIncrement,
            ReductionKind::FetchAnd,
            ReductionKind::FetchOr,
            ReductionKind::FetchComplement,
            ReductionKind::FetchMultiply,
            ReductionKind::Queue,
            ReductionKind::Stack,
            ReductionKind::ReadIncrement,
        ]
    }

    /// `k`: the number of operations each process applies on the object.
    pub fn ops_per_process(&self) -> u32 {
        match self {
            ReductionKind::ReadIncrement => 2,
            _ => 1,
        }
    }

    /// A stable display name.
    pub fn label(&self) -> &'static str {
        match self {
            ReductionKind::FetchIncrement => "fetch&increment",
            ReductionKind::FetchAnd => "fetch&and",
            ReductionKind::FetchOr => "fetch&or",
            ReductionKind::FetchComplement => "fetch&complement",
            ReductionKind::FetchMultiply => "fetch&multiply",
            ReductionKind::Queue => "queue",
            ReductionKind::Stack => "stack",
            ReductionKind::ReadIncrement => "read+increment",
        }
    }

    /// The sequential specification Theorem 6.2 instantiates for `n`
    /// processes.
    pub fn spec_for(&self, n: usize) -> Arc<dyn ObjectSpec> {
        let bits_needed = (usize::BITS - n.max(1).leading_zeros()).max(1);
        match self {
            ReductionKind::FetchIncrement => Arc::new(FetchIncrement::new(bits_needed)),
            ReductionKind::FetchAnd => Arc::new(FetchAnd::new(n.max(1))),
            ReductionKind::FetchOr => Arc::new(FetchOr::new(n.max(1))),
            ReductionKind::FetchComplement => Arc::new(FetchComplement::new(n.max(1))),
            ReductionKind::FetchMultiply => Arc::new(FetchMultiply::new(n.max(1))),
            ReductionKind::Queue => Arc::new(Queue::with_numbered_items(n)),
            ReductionKind::Stack => Arc::new(Stack::with_numbered_items(n)),
            ReductionKind::ReadIncrement => Arc::new(Counter::new(bits_needed + 1)),
        }
    }

    /// The operation process `pid` applies (the first one, for
    /// `ReadIncrement`).
    pub fn op_for(&self, pid: ProcessId, n: usize) -> Value {
        match self {
            ReductionKind::FetchIncrement => FetchIncrement::op(),
            ReductionKind::FetchAnd => FetchAnd::op_clear_bit(pid.0, n),
            ReductionKind::FetchOr => FetchOr::op_set_bit(pid.0, n),
            ReductionKind::FetchComplement => FetchComplement::op(pid.0),
            ReductionKind::FetchMultiply => FetchMultiply::op(2),
            ReductionKind::Queue => Queue::dequeue_op(),
            ReductionKind::Stack => Stack::pop_op(),
            ReductionKind::ReadIncrement => Counter::increment_op(),
        }
    }

    /// The winner test: does `resp` prove that all other processes already
    /// operated?
    pub fn decide(&self, pid: ProcessId, n: usize, resp: &Value) -> bool {
        match self {
            ReductionKind::FetchIncrement => resp.as_int() == Some(n as i128 - 1),
            ReductionKind::FetchAnd => {
                // All first-n bits cleared except pid's own.
                let Some(w) = resp.as_bits() else {
                    return false;
                };
                (0..n).all(|i| bits::bit(w, i) == (i == pid.0))
            }
            ReductionKind::FetchOr | ReductionKind::FetchComplement => {
                // All first-n bits set except pid's own.
                let Some(w) = resp.as_bits() else {
                    return false;
                };
                (0..n).all(|i| bits::bit(w, i) == (i != pid.0))
            }
            ReductionKind::FetchMultiply => {
                // Response = 2^(n-1): exactly n-1 doublings preceded.
                let Some(w) = resp.as_bits() else {
                    return false;
                };
                (0..n).all(|i| bits::bit(w, i) == (i == n - 1))
            }
            ReductionKind::Queue | ReductionKind::Stack => resp.as_int() == Some(n as i128),
            ReductionKind::ReadIncrement => resp.as_int() == Some(n as i128),
        }
    }
}

impl fmt::Display for ReductionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A wakeup algorithm obtained from an object implementation via a
/// Theorem 6.2 reduction.
///
/// # Examples
///
/// ```
/// use llsc_core::{verify_lower_bound, AdversaryConfig};
/// use llsc_wakeup::{ObjectWakeup, ReductionKind};
/// use llsc_shmem::ZeroTosses;
/// use std::sync::Arc;
///
/// // Wakeup from a dequeue on an initially-full queue, over the direct
/// // LL/SC queue implementation.
/// let alg = ObjectWakeup::direct(ReductionKind::Queue, 8);
/// let rep = verify_lower_bound(&alg, 8, Arc::new(ZeroTosses), &AdversaryConfig::default())
///     .expect("the adversary run completes within the default budgets");
/// assert!(rep.wakeup.ok());
/// assert!(rep.bound_holds);
/// ```
pub struct ObjectWakeup {
    kind: ReductionKind,
    n: usize,
    imp: Arc<dyn ObjectImplementation>,
}

impl ObjectWakeup {
    /// Builds the reduction for `n` processes over the given
    /// implementation (which must be instantiated with
    /// [`ReductionKind::spec_for`]`(n)`).
    ///
    /// # Panics
    ///
    /// Panics if the reduction needs more than one operation per process
    /// (only `ReadIncrement` does) and `imp` is single-use.
    pub fn new(kind: ReductionKind, n: usize, imp: Arc<dyn ObjectImplementation>) -> Self {
        assert!(
            kind.ops_per_process() == 1 || imp.is_multi_use(),
            "{kind} applies {} ops per process but {} is single-use",
            kind.ops_per_process(),
            imp.name()
        );
        ObjectWakeup { kind, n, imp }
    }

    /// The reduction over the direct (semantics-exploiting) LL/SC
    /// implementation of the object.
    pub fn direct(kind: ReductionKind, n: usize) -> Self {
        ObjectWakeup::new(kind, n, Arc::new(DirectLlSc::new(kind.spec_for(n))))
    }

    /// The reduction kind.
    pub fn kind(&self) -> ReductionKind {
        self.kind
    }

    /// The wrapped implementation's name.
    pub fn implementation_name(&self) -> String {
        self.imp.name()
    }
}

impl fmt::Debug for ObjectWakeup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectWakeup")
            .field("kind", &self.kind)
            .field("n", &self.n)
            .field("imp", &self.imp.name())
            .finish()
    }
}

fn verdict(win: bool) -> Step {
    done(Value::from(i64::from(win)))
}

impl Algorithm for ObjectWakeup {
    fn name(&self) -> &'static str {
        match self.kind {
            ReductionKind::FetchIncrement => "wakeup-from-fetch&increment",
            ReductionKind::FetchAnd => "wakeup-from-fetch&and",
            ReductionKind::FetchOr => "wakeup-from-fetch&or",
            ReductionKind::FetchComplement => "wakeup-from-fetch&complement",
            ReductionKind::FetchMultiply => "wakeup-from-fetch&multiply",
            ReductionKind::Queue => "wakeup-from-queue",
            ReductionKind::Stack => "wakeup-from-stack",
            ReductionKind::ReadIncrement => "wakeup-from-read+increment",
        }
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        assert_eq!(n, self.n, "ObjectWakeup was built for n = {}", self.n);
        let kind = self.kind;
        let op = kind.op_for(pid, n);
        let step = match kind {
            ReductionKind::ReadIncrement => {
                // Two operations: increment (ack), then read.
                let imp = Arc::clone(&self.imp);
                self.imp.invoke(
                    pid,
                    n,
                    op,
                    Box::new(move |_ack| {
                        imp.invoke(
                            pid,
                            n,
                            Counter::read_op(),
                            Box::new(move |resp| verdict(kind.decide(pid, n, &resp))),
                        )
                    }),
                )
            }
            _ => self.imp.invoke(
                pid,
                n,
                op,
                Box::new(move |resp| verdict(kind.decide(pid, n, &resp))),
            ),
        };
        step.into_program()
    }

    fn initial_memory(&self, n: usize) -> Vec<(RegisterId, Value)> {
        self.imp.initial_memory(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{build_all_run, check_wakeup, verify_lower_bound, AdversaryConfig};
    use llsc_shmem::ZeroTosses;
    use llsc_universal::{AdtTreeUniversal, HerlihyUniversal};

    #[test]
    fn every_reduction_solves_wakeup_over_the_direct_object() {
        for kind in ReductionKind::all() {
            for n in [2, 3, 8, 17] {
                let alg = ObjectWakeup::direct(kind, n);
                let all = build_all_run(&alg, n, Arc::new(ZeroTosses), &AdversaryConfig::default())
                    .unwrap();
                assert!(all.base.completed, "{kind} n={n}");
                let check = check_wakeup(&all.base.run);
                assert!(check.ok(), "{kind} n={n}: {check}");
                assert_eq!(check.winners.len(), 1, "{kind} n={n}");
            }
        }
    }

    #[test]
    fn every_reduction_meets_the_theorem_6_2_bound() {
        for kind in ReductionKind::all() {
            for n in [4, 16, 64] {
                let alg = ObjectWakeup::direct(kind, n);
                let rep =
                    verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &AdversaryConfig::default())
                        .unwrap();
                assert!(rep.bound_holds, "{kind} n={n}: {}", rep.winner_steps);
                assert!(rep.refutation.is_none(), "{kind} n={n}");
            }
        }
    }

    #[test]
    fn reductions_work_over_oblivious_constructions() {
        // The same wakeup reduction, run through the universal
        // constructions instead of the direct object.
        for kind in [ReductionKind::FetchIncrement, ReductionKind::Queue] {
            for n in [4, 9] {
                let spec = kind.spec_for(n);
                let adt = ObjectWakeup::new(kind, n, Arc::new(AdtTreeUniversal::new(spec.clone())));
                let all = build_all_run(&adt, n, Arc::new(ZeroTosses), &AdversaryConfig::default())
                    .unwrap();
                assert!(all.base.completed, "adt {kind} n={n}");
                assert!(check_wakeup(&all.base.run).ok(), "adt {kind} n={n}");

                let her = ObjectWakeup::new(kind, n, Arc::new(HerlihyUniversal::new(spec.clone())));
                let all = build_all_run(&her, n, Arc::new(ZeroTosses), &AdversaryConfig::default())
                    .unwrap();
                assert!(all.base.completed, "herlihy {kind} n={n}");
                assert!(check_wakeup(&all.base.run).ok(), "herlihy {kind} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "single-use")]
    fn read_increment_rejects_single_use_implementations() {
        let n = 4;
        let spec = ReductionKind::ReadIncrement.spec_for(n);
        ObjectWakeup::new(
            ReductionKind::ReadIncrement,
            n,
            Arc::new(AdtTreeUniversal::new(spec)),
        );
    }

    #[test]
    fn decide_rules_match_the_paper() {
        let n = 5;
        // fetch&increment: previous value n-1.
        assert!(ReductionKind::FetchIncrement.decide(ProcessId(0), n, &Value::from(4i64)));
        assert!(!ReductionKind::FetchIncrement.decide(ProcessId(0), n, &Value::from(3i64)));
        // fetch&and: only own bit surviving.
        let only_2 = Value::bits(vec![0b00100]);
        assert!(ReductionKind::FetchAnd.decide(ProcessId(2), n, &only_2));
        assert!(!ReductionKind::FetchAnd.decide(ProcessId(1), n, &only_2));
        // fetch&or: everything but own bit.
        let all_but_2 = Value::bits(vec![0b11011]);
        assert!(ReductionKind::FetchOr.decide(ProcessId(2), n, &all_but_2));
        assert!(!ReductionKind::FetchOr.decide(ProcessId(2), n, &only_2));
        // fetch&multiply: 2^(n-1).
        let pow = Value::bits(vec![0b10000]);
        assert!(ReductionKind::FetchMultiply.decide(ProcessId(0), n, &pow));
        assert!(!ReductionKind::FetchMultiply.decide(ProcessId(0), n, &only_2));
        // queue/stack/read+increment: the integer n.
        assert!(ReductionKind::Queue.decide(ProcessId(0), n, &Value::from(5i64)));
        assert!(ReductionKind::Stack.decide(ProcessId(0), n, &Value::from(5i64)));
        assert!(ReductionKind::ReadIncrement.decide(ProcessId(0), n, &Value::from(5i64)));
        assert!(!ReductionKind::Queue.decide(ProcessId(0), n, &Value::Unit));
    }

    #[test]
    fn kinds_enumerate_and_label() {
        assert_eq!(ReductionKind::all().len(), 8);
        assert_eq!(ReductionKind::ReadIncrement.ops_per_process(), 2);
        assert_eq!(ReductionKind::Queue.ops_per_process(), 1);
        assert_eq!(ReductionKind::FetchMultiply.to_string(), "fetch&multiply");
    }

    #[test]
    fn spec_for_builds_theorem_instantiations() {
        let q = ReductionKind::Queue.spec_for(4);
        assert_eq!(q.name(), "queue(init=4)");
        let fi = ReductionKind::FetchIncrement.spec_for(1024);
        assert!(fi.name().contains("fetch&increment"));
        let fa = ReductionKind::FetchAnd.spec_for(100);
        assert_eq!(fa.name(), "fetch&and(k=100)");
    }
}
