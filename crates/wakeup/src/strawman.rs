//! Deliberately broken "wakeup" algorithms.
//!
//! Theorem 6.1's driver ([`llsc_core::verify_lower_bound`]) does more than
//! measure step counts: when an algorithm's winner returns 1 in fewer than
//! `⌈log₄ n⌉` steps, it *constructs* the `(S, A)`-run in which the winner
//! still returns 1 while processes outside `S` never step — a concrete
//! wakeup violation. These strawmen exist to exercise that refutation
//! path; every one of them is wrong in the specific way the paper's
//! argument detects.

use llsc_shmem::dsl::{done, ll, sc, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

const COUNTER: RegisterId = RegisterId(0);

/// Returns 1 after a single LL, with no evidence anyone else is up.
/// Violates wakeup condition 3; refuted constructively for every `n > 4`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrematureWakeup;

impl Algorithm for PrematureWakeup {
    fn name(&self) -> &'static str {
        "strawman-premature"
    }

    fn spawn(&self, _pid: ProcessId, _n: usize) -> Box<dyn Program> {
        ll(COUNTER, |_| done(Value::from(1i64))).into_program()
    }
}

/// Everyone returns 0: violates wakeup condition 2 (a terminating run must
/// have a winner). The winner-based refutation does not even apply — the
/// `(All, A)`-run itself fails the specification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SilentWakeup;

impl Algorithm for SilentWakeup {
    fn name(&self) -> &'static str {
        "strawman-silent"
    }

    fn spawn(&self, _pid: ProcessId, _n: usize) -> Box<dyn Program> {
        ll(COUNTER, |_| done(Value::from(0i64))).into_program()
    }
}

/// The counter algorithm, but declaring victory at `⌈n/2⌉` increments:
/// the "winner" has evidence for only half the processes. Interestingly,
/// the Figure-2 adversary does *not* expose this one — in the
/// `(All, A)`-run everybody LLs in round 1 before anyone can return, so
/// condition 3 holds there, and the winner's `Θ(n)` step count clears the
/// `log₄ n` bar. The violation surfaces under a schedule that runs only
/// half the processes (see the tests) — a reminder that the paper's
/// adversary is crafted for the lower-bound argument, not as a complete
/// correctness oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HalfCountWakeup;

impl Algorithm for HalfCountWakeup {
    fn name(&self) -> &'static str {
        "strawman-half-count"
    }

    fn spawn(&self, _pid: ProcessId, n: usize) -> Box<dyn Program> {
        fn attempt(n: usize) -> Step {
            ll(COUNTER, move |prev| {
                let v = prev.as_int().unwrap_or(0);
                sc(COUNTER, Value::from(v + 1), move |ok, _| {
                    if !ok {
                        attempt(n)
                    } else if v + 1 == n.div_ceil(2) as i128 {
                        done(Value::from(1i64))
                    } else {
                        done(Value::from(0i64))
                    }
                })
            })
        }
        attempt(n).into_program()
    }
}

/// Returns 1 without taking a single step. The most extreme violation:
/// `UP(p, 0) = {p}`, so the refuting `(S, A)`-run has `|S| = 1`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoStepWakeup;

impl Algorithm for NoStepWakeup {
    fn name(&self) -> &'static str {
        "strawman-no-step"
    }

    fn spawn(&self, _pid: ProcessId, _n: usize) -> Box<dyn Program> {
        done(Value::from(1i64)).into_program()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{verify_lower_bound, AdversaryConfig, WakeupViolation};
    use llsc_shmem::ZeroTosses;
    use std::sync::Arc;

    fn report(alg: &dyn Algorithm, n: usize) -> llsc_core::LowerBoundReport {
        verify_lower_bound(alg, n, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap()
    }

    #[test]
    fn premature_is_refuted_with_s_run_evidence() {
        let rep = report(&PrematureWakeup, 32);
        assert!(!rep.wakeup.ok());
        assert!(!rep.bound_holds);
        let refutation = rep.refutation.expect("refutation constructed");
        assert!(refutation.s.len() < 32);
        assert!(refutation.winner_returns_one_in_s_run);
        assert!(!refutation.never_step.is_empty());
        assert!(refutation
            .violations
            .iter()
            .any(|v| matches!(v, WakeupViolation::PrematureWinner { .. })));
    }

    #[test]
    fn silent_fails_condition_two() {
        let rep = report(&SilentWakeup, 8);
        assert!(rep.wakeup.violations.contains(&WakeupViolation::NoWinner));
        assert!(rep.winner.is_none());
        // With no winner there is nothing to refute.
        assert!(rep.refutation.is_none());
    }

    #[test]
    fn half_count_passes_the_adversary_but_fails_a_partial_schedule() {
        // Under the (All, A)-run everyone steps in round 1, so the
        // adversary does not expose the bug...
        let rep = report(&HalfCountWakeup, 10);
        assert!(rep.wakeup.ok());
        assert!(rep.bound_holds);
        // ...but running only the first half of the processes does: the
        // ⌈n/2⌉-th increment declares victory while p5..p9 never stepped.
        use llsc_shmem::{Executor, ExecutorConfig, ListScheduler};
        let mut e = Executor::new(
            &HalfCountWakeup,
            10,
            Arc::new(ZeroTosses),
            ExecutorConfig::default(),
        );
        let order: Vec<ProcessId> = (0..5).flat_map(|_| (0..5).map(ProcessId)).collect();
        let mut sched = ListScheduler::new(order.into_iter().cycle().take(200));
        e.drive(&mut sched, 200).unwrap();
        let check = llsc_core::check_wakeup(e.run());
        assert!(
            check
                .violations
                .iter()
                .any(|v| matches!(v, WakeupViolation::PrematureWinner { .. })),
            "{check}"
        );
    }

    #[test]
    fn no_step_is_the_extreme_case() {
        let rep = report(&NoStepWakeup, 16);
        assert!(!rep.wakeup.ok());
        assert!(!rep.bound_holds);
        assert_eq!(rep.winner_steps, 0);
        let refutation = rep.refutation.expect("refutation constructed");
        assert_eq!(refutation.s.len(), 1, "UP(winner, 0) = {{winner}}");
        // Nobody — not even the winner — takes a toss or shared-memory
        // step in the (S, A)-run.
        assert_eq!(refutation.never_step.len(), 16);
    }

    #[test]
    fn strawmen_have_distinct_names() {
        let names = [
            PrematureWakeup.name(),
            SilentWakeup.name(),
            HalfCountWakeup.name(),
            NoStepWakeup.name(),
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
