//! Tournament wakeup: the algorithm that *approaches the lower bound*.
//!
//! Processes are leaves of a complete binary tree; each internal node is a
//! meeting point holding the Unit marker. A process climbs with the bitset
//! of processes it has absorbed, `swap`ping it into each meeting point on
//! its path:
//!
//! * receiving the marker means it arrived first — it loses the meeting,
//!   leaves its bitset parked for the sibling leader, and returns **0**;
//! * receiving the sibling's parked bitset means it arrived second — it
//!   absorbs the bits and climbs as the merged group's leader.
//!
//! Exactly one process survives all meetings; its bitset then covers all
//! `n` processes (each bit enters the system only through its owner's own
//! swap, so everyone demonstrably took a step). It performs one final
//! "victory" swap — making the win observable, and ensuring even the
//! `n = 1` winner takes a step before returning — and returns **1**.
//!
//! The winner performs at most `⌈log₂ n⌉ + 1` shared-memory operations,
//! within a factor 2 of the `log₄ n` lower bound of Theorem 6.1 — this is
//! the repository's witness that the wakeup bound is essentially tight.

use llsc_shmem::dsl::{done, swap, Step};
use llsc_shmem::{Algorithm, ProcessId, Program, RegisterId, Value};

/// Meeting-point registers: `NODE_BASE + heap_index`.
pub(crate) const NODE_BASE: u64 = 100;
/// The victory register the final leader swaps before returning 1.
pub(crate) const DONE_REG: RegisterId = RegisterId(99);

pub(crate) fn node_reg(heap_index: u64) -> RegisterId {
    RegisterId(NODE_BASE + heap_index)
}

pub(crate) fn leaf_slots(n: usize) -> u64 {
    (n.max(1) as u64).next_power_of_two()
}

pub(crate) fn limbs(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

pub(crate) fn own_bits(pid: ProcessId, n: usize) -> Vec<u64> {
    let mut w = vec![0u64; limbs(n)];
    w[pid.0 / 64] |= 1 << (pid.0 % 64);
    w
}

pub(crate) fn or_bits(a: &[u64], b: &[u64]) -> Vec<u64> {
    (0..a.len().max(b.len()))
        .map(|i| a.get(i).copied().unwrap_or(0) | b.get(i).copied().unwrap_or(0))
        .collect()
}

pub(crate) fn is_full(bits: &[u64], n: usize) -> bool {
    (0..n).all(|i| bits.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1))
}

pub(crate) fn subtree_nonempty(v: u64, n: usize) -> bool {
    let slots = leaf_slots(n);
    let mut low = v;
    while low < slots {
        low *= 2;
    }
    (low - slots) < n as u64
}

/// The tournament wakeup algorithm: winner cost `⌈log₂ n⌉ + 1`.
///
/// # Examples
///
/// ```
/// use llsc_core::{verify_lower_bound, ceil_log4, AdversaryConfig};
/// use llsc_wakeup::TournamentWakeup;
/// use llsc_shmem::ZeroTosses;
/// use std::sync::Arc;
///
/// let rep = verify_lower_bound(&TournamentWakeup, 64, Arc::new(ZeroTosses), &AdversaryConfig::default())
///     .expect("the adversary run completes within the default budgets");
/// assert!(rep.wakeup.ok());
/// // Winner cost sits between log4(n) and 2*log4(n) + 1.
/// assert!(rep.winner_steps >= ceil_log4(64));
/// assert!(rep.winner_steps <= 2 * ceil_log4(64) + 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TournamentWakeup;

impl Algorithm for TournamentWakeup {
    fn name(&self) -> &'static str {
        "tournament-wakeup"
    }

    fn spawn(&self, pid: ProcessId, n: usize) -> Box<dyn Program> {
        let leaf = leaf_slots(n) + pid.0 as u64;
        climb(n, leaf, own_bits(pid, n)).into_program()
    }
}

fn climb(n: usize, child: u64, bits: Vec<u64>) -> Step {
    if child == 1 {
        // Survived every meeting: the bitset must cover everyone.
        debug_assert!(is_full(&bits, n), "tournament leader missing bits");
        let verdict = i64::from(is_full(&bits, n));
        return swap(DONE_REG, Value::bits(bits), move |_| {
            done(Value::from(verdict))
        });
    }
    let v = child / 2;
    let sibling = child ^ 1;
    if !subtree_nonempty(sibling, n) {
        return climb(n, v, bits);
    }
    swap(node_reg(v), Value::bits(bits.clone()), move |received| {
        match received.as_bits() {
            // First at the meeting point: lose, leave the bits parked.
            None => done(Value::from(0i64)),
            Some(parked) => climb(n, v, or_bits(&bits, parked)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_core::{build_all_run, ceil_log4, check_wakeup, verify_lower_bound, AdversaryConfig};
    use llsc_shmem::{Executor, ExecutorConfig, RandomScheduler, ZeroTosses};
    use std::sync::Arc;

    #[test]
    fn satisfies_wakeup_under_the_adversary() {
        for n in [1, 2, 3, 5, 8, 13, 16, 64, 100] {
            let all = build_all_run(
                &TournamentWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(all.base.completed, "n={n}");
            let check = check_wakeup(&all.base.run);
            assert!(check.ok(), "n={n}: {check}");
            assert_eq!(check.winners.len(), 1, "n={n}: one tournament survivor");
        }
    }

    #[test]
    fn satisfies_wakeup_under_random_schedules() {
        for seed in 0..12 {
            for n in [3, 6, 9] {
                let mut e = Executor::new(
                    &TournamentWakeup,
                    n,
                    Arc::new(ZeroTosses),
                    ExecutorConfig::default(),
                );
                e.drive(&mut RandomScheduler::new(seed), 1_000_000).unwrap();
                assert!(e.all_terminated(), "seed={seed} n={n}");
                assert!(check_wakeup(e.run()).ok(), "seed={seed} n={n}");
            }
        }
    }

    #[test]
    fn winner_cost_is_logarithmic_and_near_tight() {
        // The tournament winner performs between ceil(log4 n) (the
        // Theorem 6.1 bound) and ceil(log2 n) + 1 operations: the bound is
        // tight within a factor of ~2.
        for n in [2, 4, 8, 16, 64, 256, 1024] {
            let rep = verify_lower_bound(
                &TournamentWakeup,
                n,
                Arc::new(ZeroTosses),
                &AdversaryConfig::default(),
            )
            .unwrap();
            assert!(rep.wakeup.ok(), "n={n}");
            assert!(rep.bound_holds, "n={n}");
            let log2 = (n as f64).log2().ceil() as u64;
            assert!(
                rep.winner_steps <= log2 + 1,
                "n={n}: winner {} > log2+1={}",
                rep.winner_steps,
                log2 + 1
            );
            assert!(rep.winner_steps >= ceil_log4(n), "n={n}");
            // Every process (not just the winner) stays within log2 + 1.
            assert!(rep.max_steps <= log2 + 1, "n={n}: max {}", rep.max_steps);
        }
    }

    #[test]
    fn losers_return_quickly() {
        // A loser performs at most as many swaps as meetings it attended.
        let all = build_all_run(
            &TournamentWakeup,
            16,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
        )
        .unwrap();
        let check = check_wakeup(&all.base.run);
        let winner = check.first_winner().unwrap();
        for p in llsc_shmem::ProcessId::all(16) {
            if p != winner {
                assert!(all.base.run.shared_steps(p) <= 5);
                assert_eq!(
                    all.base.run.verdict(p).unwrap().as_int(),
                    Some(0),
                    "{p} lost"
                );
            }
        }
    }

    #[test]
    fn bit_helpers() {
        assert_eq!(own_bits(ProcessId(65), 70)[1], 2);
        assert!(is_full(&[0b111], 3));
        assert!(!is_full(&[0b101], 3));
        assert_eq!(or_bits(&[1], &[2, 4]), vec![3, 4]);
    }
}
