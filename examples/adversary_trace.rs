//! Watch the Figure-2 adversary at work: a full round-by-round trace of an
//! `(All, A)`-run with the `UP` sets evolving alongside.
//!
//! ```text
//! cargo run --example adversary_trace
//! ```
//!
//! This is the run the whole lower-bound argument revolves around; seeing
//! the five phases and the knowledge bookkeeping side by side is the
//! quickest way to internalise Section 5.

use llsc_lowerbound::core::{build_all_run, trace_all_run, AdversaryConfig};
use llsc_lowerbound::shmem::ZeroTosses;
use llsc_lowerbound::wakeup::{GossipWakeup, TournamentWakeup};
use std::sync::Arc;

fn main() {
    let cfg = AdversaryConfig::default();

    println!("=== tournament wakeup, n = 4 ===\n");
    let all = build_all_run(&TournamentWakeup, 4, Arc::new(ZeroTosses), &cfg)
        .expect("the tournament run stays within the default budgets");
    print!("{}", trace_all_run(&all, 20));

    println!("\n=== gossip wakeup, n = 4 (moves, swaps, validates) ===\n");
    let all = build_all_run(&GossipWakeup, 4, Arc::new(ZeroTosses), &cfg)
        .expect("the gossip run stays within the default budgets");
    print!("{}", trace_all_run(&all, 20));

    println!("\nReading the trace:");
    println!("  * each round runs five phases: coin tosses, LL/validate, moves");
    println!("    (in the secretive order sigma_r), swaps, SCs;");
    println!("  * UP(p, r) counts the processes p might know to be up — it can");
    println!("    at most quadruple per round (Lemma 5.1), which is where the");
    println!("    log4(n) in the lower bound comes from;");
    println!("  * UP(R, r) is what a register's value can betray to a reader.");
}
