//! The randomized bound in action (experiment E6): Lemma 3.1 over sampled
//! toss assignments.
//!
//! ```text
//! cargo run --release --example expected_complexity
//! ```
//!
//! The paper's bound covers randomized algorithms: against a scheduler
//! that sees the past but not future coins, if the algorithm terminates
//! with probability `c` then its worst-case *expected* shared-access
//! complexity is at least `c · log₄ n`. This example estimates the
//! expectation for the shipped randomized algorithms by sampling toss
//! assignments, and shows a `c < 1` case: the backoff algorithm under the
//! adversarially chosen all-odd coin assignment never competes.

use llsc_lowerbound::core::{build_all_run, estimate_expected_complexity, AdversaryConfig};
use llsc_lowerbound::shmem::ConstantTosses;
use llsc_lowerbound::wakeup::{randomized_algorithms, BackoffWakeup};
use std::sync::Arc;

fn main() {
    let cfg = AdversaryConfig::default();
    println!("Sampled expected complexity under the Figure-2 adversary (40 assignments)\n");
    println!(
        "{:<28} {:>5} {:>6} {:>10} {:>11} {:>8}",
        "algorithm", "n", "c", "E[winner]", "min winner", "log4(n)"
    );
    println!("{:-<74}", "");
    for alg in randomized_algorithms() {
        for n in [4usize, 16, 64] {
            let rep = estimate_expected_complexity(alg.as_ref(), n, 0..40, &cfg)
                .expect("every sampled run stays within the default budgets");
            assert!(rep.all_meet_bound);
            println!(
                "{:<28} {:>5} {:>6.2} {:>10.1} {:>11} {:>8.2}",
                rep.algorithm,
                n,
                rep.termination_rate,
                rep.mean_winner_steps,
                rep.min_winner_steps,
                rep.log4_n
            );
        }
    }

    println!("\nLemma 3.1's `c`: the all-odd assignment makes backoff-wakeup spin");
    let tight = AdversaryConfig {
        max_rounds: 50,
        ..AdversaryConfig::default()
    };
    let all = build_all_run(&BackoffWakeup, 4, Arc::new(ConstantTosses(1)), &tight)
        .expect("the truncated run stays within the default event budget");
    println!(
        "  backoff-wakeup under ConstantTosses(1): completed = {} after {} rounds",
        all.base.completed,
        all.base.num_rounds()
    );
    assert!(!all.base.completed);
    println!("\nWith termination probability c, the expected bound scales to c*log4(n):");
    println!("for fair coins c = 1 empirically, and every sampled winner clears the bound.");
}
