//! The Indistinguishability Lemma in action (experiment E4): build an
//! `(All, A)`-run and an `(S, A)`-run and verify Lemma 5.2 mechanically.
//!
//! ```text
//! cargo run --example indistinguishability
//! ```

use llsc_lowerbound::core::{
    build_all_run, build_s_run, check_indistinguishability, AdversaryConfig, ProcSet,
};
use llsc_lowerbound::shmem::{ProcessId, ZeroTosses};
use llsc_lowerbound::wakeup::CounterWakeup;
use std::sync::Arc;

fn main() {
    let n = 6;
    let cfg = AdversaryConfig::default();
    println!("Lemma 5.2 on the counter wakeup algorithm, n = {n}\n");

    let all = build_all_run(&CounterWakeup, n, Arc::new(ZeroTosses), &cfg)
        .expect("the counter run stays within the default budgets");
    println!(
        "(All, A)-run: {} rounds, {} events",
        all.base.num_rounds(),
        all.base.run.events().len()
    );

    // How knowledge spreads: UP(p, r) per round.
    println!("\nUP-set sizes by round (Lemma 5.1 cap in parentheses):");
    for r in 0..=all.base.num_rounds().min(6) {
        let sizes: Vec<usize> = ProcessId::all(n).map(|p| all.up.proc(p, r).len()).collect();
        println!(
            "  round {r}: {:?}  (cap 4^{r} = {})",
            sizes,
            4u64.saturating_pow(r as u32)
        );
    }
    assert!(all.up.lemma_5_1_holds());

    // Check the lemma against every proper subset of a small window.
    println!("\nChecking (S, A)-runs for every subset S of the processes:");
    let mut total_checks = 0usize;
    for mask in 0u32..(1 << n) {
        let s: ProcSet = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(ProcessId)
            .collect();
        let srun = build_s_run(&CounterWakeup, n, Arc::new(ZeroTosses), &s, &all, &cfg)
            .expect("each (S, A)-run stays within the default budgets");
        let report = check_indistinguishability(&all, &srun);
        assert!(
            report.ok(),
            "Lemma 5.2 violated for S = {s:?}: {:?}",
            report.violations
        );
        total_checks += report.process_checks + report.register_checks;
    }
    println!(
        "  all {} subsets pass; {} individual state comparisons, 0 violations",
        1 << n,
        total_checks
    );

    // And the punchline of the proof: take S = UP(winner, r).
    let winner = llsc_lowerbound::core::check_wakeup(&all.base.run)
        .first_winner()
        .expect("terminating wakeup run has a winner");
    let r = all.base.run.shared_steps(winner) as usize;
    let s = all.up.proc(winner, r.min(all.up.rounds())).clone();
    println!(
        "\nTheorem 6.1's step: winner {winner} did {r} ops; S = UP(winner, {r}) has {} processes.",
        s.len()
    );
    println!("Because {r} >= log4({n}), S already covers everyone — no refuting");
    println!("(S, A)-run exists. For an algorithm finishing in < log4(n) ops, it would.");
}
