//! Theorem 6.2 end-to-end (experiment E7): wakeup through one shared
//! object of each type the paper lists.
//!
//! ```text
//! cargo run --release --example object_reductions
//! ```
//!
//! For each of the eight object types, `n` processes each apply one (or,
//! for the read/increment counter, two) operation(s) on a single shared
//! object, implemented over LL/SC memory, and decide 0/1 from the
//! response alone. The process whose response proves everyone else already
//! operated returns 1 — so the object solves wakeup, and Corollary 6.1
//! transfers the Ω(log n) bound to every implementation of its type.

use llsc_lowerbound::core::{ceil_log4, verify_lower_bound, AdversaryConfig};
use llsc_lowerbound::shmem::ZeroTosses;
use llsc_lowerbound::universal::AdtTreeUniversal;
use llsc_lowerbound::wakeup::{ObjectWakeup, ReductionKind};
use std::sync::Arc;

fn main() {
    let n = 32;
    let cfg = AdversaryConfig::default();

    println!("Theorem 6.2: wakeup from one shared object, n = {n}\n");
    println!(
        "{:<18} {:>12} {:>14} {:>14}  verdict",
        "object", "ops/process", "winner steps", "ceil(log4 n)"
    );
    println!("{:-<76}", "");
    for kind in ReductionKind::all() {
        let alg = ObjectWakeup::direct(kind, n);
        let rep = verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &cfg)
            .expect("the reduction run stays within the default budgets");
        assert!(rep.wakeup.ok() && rep.bound_holds);
        println!(
            "{:<18} {:>12} {:>14} {:>14}  wakeup solved, bound holds",
            kind.label(),
            kind.ops_per_process(),
            rep.winner_steps,
            ceil_log4(n)
        );
    }

    println!("\nThe same reduction through an *oblivious* construction:");
    println!("{:-<76}", "");
    let kind = ReductionKind::Queue;
    let spec = kind.spec_for(n);
    let alg = ObjectWakeup::new(kind, n, Arc::new(AdtTreeUniversal::new(spec)));
    let rep = verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &cfg)
        .expect("the oblivious reduction run stays within the default budgets");
    assert!(rep.wakeup.ok() && rep.bound_holds);
    println!(
        "queue via adt-group-update: winner {} steps (>= {} required, O(log n) achieved)",
        rep.winner_steps,
        ceil_log4(n)
    );
    println!("\nCorollary 6.1: because one dequeue solves wakeup, EVERY linearizable");
    println!("n-process queue implementation over this memory pays Omega(log n) —");
    println!("and the ADT-style construction shows that is the exact price.");
}
