//! Quickstart: run the Theorem 6.1 lower-bound driver on one algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the `(All, A)`-run of the tournament wakeup algorithm under the
//! paper's five-phase adversary, checks the wakeup specification, and
//! reports the winner's shared-access step count against `log₄ n`.

use llsc_lowerbound::core::{ceil_log4, verify_lower_bound, AdversaryConfig};
use llsc_lowerbound::shmem::ZeroTosses;
use llsc_lowerbound::wakeup::TournamentWakeup;
use std::sync::Arc;

fn main() {
    let n = 64;
    println!("Theorem 6.1 driver: tournament wakeup, n = {n}\n");

    let report = verify_lower_bound(
        &TournamentWakeup,
        n,
        Arc::new(ZeroTosses),
        &AdversaryConfig::default(),
    )
    .expect("the adversary run stays within the default budgets");

    println!(
        "(All, A)-run: {} rounds, completed = {}",
        report.rounds, report.completed
    );
    println!("wakeup check: {}", report.wakeup);
    let winner = report
        .winner
        .expect("a terminating wakeup run has a winner");
    println!(
        "winner: {winner} with {} shared-memory operations",
        report.winner_steps
    );
    println!("t(R) = max over processes: {} operations", report.max_steps);
    println!(
        "bound: ceil(log4 {n}) = {}  ->  {}",
        ceil_log4(n),
        if report.bound_holds {
            "HOLDS"
        } else {
            "REFUTED"
        }
    );
    println!(
        "|UP(winner, r)| = {} (Lemma 5.1 cap: 4^r = {})",
        report.up_winner_size,
        4u64.saturating_pow(report.winner_steps as u32)
    );

    assert!(report.wakeup.ok() && report.bound_holds);
    println!(
        "\nThe winner performed {}x the log4(n) minimum — the paper's",
        report.winner_steps as f64 / report.log4_n
    );
    println!("Ω(log n) bound is tight within a small constant factor.");
}
