//! Section 4 walkthrough (experiment E11): why move operations must be
//! scheduled secretively.
//!
//! ```text
//! cargo run --example secretive_schedules
//! ```
//!
//! Reproduces the paper's opening example — the chain
//! `p_i: move(R_i, R_{i+1})` — under three schedules: the naive id-order
//! schedule (which aggregates all `n` movers into one register), the
//! paper's even/odd schedule, and the Figure-1 construction.

use llsc_lowerbound::core::{
    is_secretive, movers, secretive_complete_schedule, source, MoveConfig,
};
use llsc_lowerbound::shmem::{ProcessId, RegisterId};

fn show(label: &str, schedule: &[ProcessId], cfg: &MoveConfig, n: usize) {
    println!("{label}");
    println!(
        "  schedule: {}",
        schedule
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut worst = 0;
    for i in 0..=n as u64 {
        let r = RegisterId(i);
        let m = movers(r, schedule, cfg);
        worst = worst.max(m.len());
        if !m.is_empty() {
            println!(
                "  {r}: source {}  movers [{}]",
                source(r, schedule, cfg),
                m.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    println!(
        "  worst movers-list length: {worst}  secretive: {}\n",
        is_secretive(schedule, cfg)
    );
}

fn main() {
    let n = 8;
    println!("The Section-4 chain: p_i moves R_i into R_(i+1), n = {n}\n");
    let cfg = MoveConfig::from_iter(
        (0..n).map(|i| (ProcessId(i), RegisterId(i as u64), RegisterId(i as u64 + 1))),
    );

    // 1. The naive schedule: R_n ends up revealing all n movers.
    let naive: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    show(
        "1. naive id-order schedule (the information leak)",
        &naive,
        &cfg,
        n,
    );

    // 2. The paper's alternative: evens before odds.
    let mut even_odd: Vec<ProcessId> = (0..n).step_by(2).map(ProcessId).collect();
    even_odd.extend((1..n).step_by(2).map(ProcessId));
    show("2. the paper's even/odd schedule", &even_odd, &cfg, n);

    // 3. The Figure-1 two-stage construction (Lemma 4.1).
    let sigma = secretive_complete_schedule(&cfg);
    show(
        "3. the Figure-1 secretive complete schedule",
        &sigma,
        &cfg,
        n,
    );

    println!("Lemma 4.1: a secretive schedule always exists — every register ends");
    println!("with at most two movers, so reading any one register reveals at most");
    println!("two processes. This is what caps UP-set growth at 4^r (Lemma 5.1).");
}
