//! Universal constructions head-to-head (experiments E8/E9/E10): the
//! `O(log n)` Group-Update tree versus the `Θ(n)` baselines versus the
//! non-oblivious direct object.
//!
//! ```text
//! cargo run --release --example universal_constructions
//! ```

use llsc_lowerbound::objects::FetchIncrement;
use llsc_lowerbound::universal::{
    measure, AdtTreeUniversal, CombiningTreeUniversal, DirectLlSc, HerlihyUniversal, MeasureConfig,
    ScheduleKind,
};
use std::sync::Arc;

fn main() {
    let ns = [4usize, 8, 16, 32, 64, 128, 256];
    let cfg = MeasureConfig {
        check_linearizability: false, // checked in the test suite; sweeps here
        ..MeasureConfig::default()
    };

    println!("Worst-case shared ops per object operation (fetch&increment, Figure-2 adversary)");
    println!("{:-<86}", "");
    println!(
        "{:>6} {:>14} {:>18} {:>16} {:>14} {:>12}",
        "n", "adt-tree", "combining-naive", "herlihy", "direct", "log2(n)+2"
    );
    for n in ns {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let row: Vec<u64> = [
            &AdtTreeUniversal::new(spec.clone())
                as &dyn llsc_lowerbound::universal::ObjectImplementation,
            &CombiningTreeUniversal::new(spec.clone()),
            &HerlihyUniversal::new(spec.clone()),
            &DirectLlSc::new(spec.clone()),
        ]
        .iter()
        .map(|imp| {
            measure(*imp, spec.as_ref(), n, &ops, ScheduleKind::Adversary, &cfg)
                .expect("each construction run completes within the default budgets")
                .max_ops
        })
        .collect();
        println!(
            "{:>6} {:>14} {:>18} {:>16} {:>14} {:>12}",
            n,
            row[0],
            row[1],
            row[2],
            row[3],
            (n as f64).log2() as u64 + 2
        );
    }

    println!();
    println!("The non-oblivious escape hatch: direct LL/SC, contended vs uncontended");
    println!("{:-<60}", "");
    println!(
        "{:>6} {:>22} {:>22}",
        "n", "sequential (solo)", "adversary (contended)"
    );
    for n in [4usize, 16, 64, 256] {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let solo = measure(
            &DirectLlSc::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Sequential,
            &cfg,
        )
        .expect("the solo run completes within the default budgets");
        let contended = measure(
            &DirectLlSc::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &cfg,
        )
        .expect("the contended run completes within the default budgets");
        println!("{:>6} {:>22} {:>22}", n, solo.max_ops, contended.max_ops);
    }

    println!();
    println!("Reading the tables:");
    println!("  * adt-tree grows like log2(n) + 2 — the paper's O(log n) upper bound, tight");
    println!("    against the Omega(log n) lower bound.");
    println!("  * the naive combining tree and the Herlihy construction grow linearly —");
    println!("    obliviousness without the Group-Update discipline costs Theta(n).");
    println!("  * the direct object costs a constant 2 ops solo: beating log n requires");
    println!("    exploiting the type's semantics, exactly as the paper concludes.");
}
