//! The wakeup lower-bound sweep (experiment E5): every shipped wakeup
//! algorithm versus `⌈log₄ n⌉` across a range of `n`.
//!
//! ```text
//! cargo run --release --example wakeup_lower_bound
//! ```
//!
//! Also demonstrates the refutation path: the strawman algorithms are fed
//! to the same driver, which constructs the `(S, A)`-run counterexamples
//! the paper's proof promises.

use llsc_lowerbound::core::{ceil_log4, verify_lower_bound, AdversaryConfig};
use llsc_lowerbound::shmem::ZeroTosses;
use llsc_lowerbound::wakeup::{correct_algorithms, strawman_algorithms};
use std::sync::Arc;

fn main() {
    let ns = [4usize, 16, 64, 256, 1024];
    let cfg = AdversaryConfig::default();

    println!("E5: winner shared-access steps vs the ceil(log4 n) bound");
    println!("{:-<78}", "");
    print!("{:<22}", "algorithm \\ n");
    for n in ns {
        print!("{n:>10}");
    }
    println!();
    print!("{:<22}", "ceil(log4 n)");
    for n in ns {
        print!("{:>10}", ceil_log4(n));
    }
    println!("\n{:-<78}", "");

    for alg in correct_algorithms() {
        print!("{:<22}", alg.name());
        for n in ns {
            let rep = verify_lower_bound(alg.as_ref(), n, Arc::new(ZeroTosses), &cfg)
                .expect("each adversary run stays within the default budgets");
            assert!(rep.wakeup.ok(), "{} violates wakeup at n={n}", alg.name());
            assert!(rep.bound_holds, "{} beats the bound at n={n}?!", alg.name());
            print!("{:>10}", rep.winner_steps);
        }
        println!();
    }

    println!("\nEvery winner sits on or above the bound; the tournament");
    println!("algorithm tracks it within a factor ~2 (log2 vs log4).\n");

    println!("Refutation path: the strawmen");
    println!("{:-<78}", "");
    let n = 64;
    for alg in strawman_algorithms() {
        let rep = verify_lower_bound(alg.as_ref(), n, Arc::new(ZeroTosses), &cfg)
            .expect("each strawman run stays within the default budgets");
        print!(
            "{:<22} n={n}: wakeup {}",
            alg.name(),
            if rep.wakeup.ok() { "ok" } else { "VIOLATED" }
        );
        match rep.refutation {
            Some(r) => println!(
                " | refuted: |S| = {}, {} processes never step in the (S, A)-run",
                r.s.len(),
                r.never_step.len()
            ),
            None => println!(" | no winner-based refutation applies"),
        }
    }
    println!("\n(The half-count strawman passes the adversary run — its violation");
    println!("needs a partial schedule; see llsc-wakeup's tests.)");
}
