//! `llsc` — the command-line front end of the reproduction.
//!
//! ```text
//! llsc wakeup    --alg tournament-wakeup --n 64        Theorem 6.1 driver
//! llsc trace     --alg counter-wakeup    --n 4         round-by-round trace
//! llsc stress    --alg counter-wakeup    --n 6         partial-schedule sweep
//! llsc indist    --alg bitset-wakeup     --n 5         Lemma 5.2, all subsets
//! llsc secretive --n 8 [--seed 7]                      Section-4 schedules
//! llsc universal --n 64 [--imp adt|naive|herlihy|direct] [--schedule adversary|rr|seq]
//! llsc replay    repro.json                             re-execute a repro case
//! llsc shrink    repro.json [--out min.json]            minimize a repro case
//! llsc job       run|resume|status --dir <d> [...]      checkpointed sweep jobs
//! llsc list                                            available algorithms
//! ```
//!
//! Every subcommand is deterministic; `--seed` selects toss assignments or
//! random configurations where applicable. The heavy subcommands
//! (`stress`, `indist`) also take `--threads N` — a deterministic parallel
//! fan-out whose output is byte-identical at any thread count — and, along
//! with `wakeup`, `--json PATH` to write the result as the same
//! `{"tables":[…]}` artifact the `table_*` binaries produce.

use llsc_lowerbound::bench::repro::{run_case, shrink_case};
use llsc_lowerbound::bench::table::Table;
use llsc_lowerbound::bench::xcheck::{
    e18_case, xcheck_universal, xcheck_wakeup, BackendKind, XcheckConfig,
};
use llsc_lowerbound::core::{
    build_all_run, indist_all_subsets, is_secretive, movers, random_move_config,
    secretive_complete_schedule, standard_portfolio, stress_wakeup_sweep, trace_all_run,
    verify_lower_bound, AdversaryConfig, MoveConfig,
};
use llsc_lowerbound::objects::FetchIncrement;
use llsc_lowerbound::shmem::{
    Algorithm, ProcessId, RegisterId, ReproCase, SeededTosses, Sweep, TossAssignment, ZeroTosses,
};
use llsc_lowerbound::universal::{
    measure, AdtTreeUniversal, CombiningTreeUniversal, DirectLlSc, HerlihyUniversal, MeasureConfig,
    ObjectImplementation, ScheduleKind,
};
use llsc_lowerbound::wakeup::{
    correct_algorithms, hardened_algorithms, randomized_algorithms, recoverable_algorithms,
    strawman_algorithms,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // The job subcommand takes a positional action, maps job outcomes to
    // its own exit codes (0 complete, 1 incomplete, 130 interrupted), and
    // installs signal handlers — handle it before the generic dispatch.
    if cmd == "job" {
        return cmd_job(rest);
    }
    // The repro subcommands take a positional file before any flags.
    if matches!(cmd.as_str(), "replay" | "shrink") {
        let result = match cmd.as_str() {
            "replay" => cmd_replay(rest),
            _ => cmd_shrink(rest),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "wakeup" => cmd_wakeup(&opts),
        "trace" => cmd_trace(&opts),
        "stress" => cmd_stress(&opts),
        "indist" => cmd_indist(&opts),
        "secretive" => cmd_secretive(&opts),
        "universal" => cmd_universal(&opts),
        "xcheck" => cmd_xcheck(&opts),
        "bench" => cmd_bench(&opts),
        "list" => cmd_list(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: llsc <subcommand> [options]

subcommands:
  wakeup     --alg <name> --n <N> [--seed <s>]   run the Theorem 6.1 driver
  trace      --alg <name> --n <N> [--seed <s>]   print the (All, A)-run
  stress     --alg <name> --n <N> [--seed <s>]   partial-schedule stress sweep
  indist     --alg <name> --n <N> [--seed <s>]   Lemma 5.2, exhaustive subsets
  secretive  --n <N> [--seed <s>]                Section-4 schedule demo
  universal  --n <N> [--imp <i>] [--schedule <k>] measure a construction
  xcheck     [--alg <name>] [--imp <i>] [--n <N>] cross-validate the simulator
             [--trials <K>] [--safety-only]       against the hardware (atomics)
                                                  backend: every hardware
                                                  history must be safe and its
                                                  costs inside a simulator-
                                                  derived envelope
                                                  (--safety-only demotes the
                                                  count check to advisory, for
                                                  polling constructions)
  bench      [--backend sim|atomic|both]          E18 throughput/latency on a
             [--ns 2,4] [--samples <K>]           chosen execution backend
  replay     <file>                               re-execute a repro case and
                                                  compare against its recorded
                                                  outcome (nonzero on diverge)
  shrink     <file> [--out <p>] [--log <p>]       delta-debug a repro case to a
                                                  minimal reproducer with the
                                                  same failure class
                                                  [--max-replays <k>]
  job run    --dir <d> --experiment e4|e6|e13|e20 start a checkpointed,
             [--ns 4,6] [--toss-seeds 0,1,42]     resumable sweep job; after
             [--samples <K>] [--chunks <C>]       every chunk the results are
             [--seed <s>] [--retries <R>]         persisted atomically, so a
             [--backoff-ms <MS>]                  killed job loses at most one
             [--chunk-timeout-ms <MS>]            chunk of work (SIGINT/SIGTERM
             [--max-events <N>] [--threads <T>]   flush a final checkpoint)
             [--intensities 0,1,2,4]              e20 chaos/fault knobs, all
             [--recovery-delay <D>]               part of the job fingerprint
             [--respawn-budget <B>]               (0 keeps the arm's regime)
  job resume --dir <d> [--threads <T>]            continue from the newest
                                                  valid checkpoint; the final
                                                  artifact is byte-identical
                                                  to an uninterrupted run at
                                                  any thread count
  job status --dir <d>                            report progress without
                                                  executing anything
             (job exit codes: 0 complete, 1 incomplete with a partial
              artifact and populated manifest, 130 interrupted, 2 error)
  list                                            algorithm / experiment /
                                                  backend registry

options:
  --alg       an algorithm name from `llsc list`
  --n         number of processes (default 8)
  --seed      toss-assignment / configuration seed (default: deterministic)
  --threads   worker threads for stress/indist sweeps (default 1;
              output is byte-identical at any thread count)
  --json      write the result as a {\"tables\":[...]} artifact
              (wakeup, stress, indist)
  --imp       adt | naive | herlihy | direct       (default adt)
  --schedule  adversary | rr | seq | random        (default adversary)";

struct Opts {
    flags: BTreeMap<String, String>,
}

impl Opts {
    fn n(&self) -> Result<usize, String> {
        match self.flags.get("n") {
            None => Ok(8),
            Some(v) => v.parse().map_err(|_| format!("bad --n value `{v}`")),
        }
    }

    fn seed(&self) -> Result<Option<u64>, String> {
        match self.flags.get("seed") {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad --seed value `{v}`")),
        }
    }

    fn toss(&self) -> Result<Arc<dyn TossAssignment>, String> {
        Ok(match self.seed()? {
            Some(s) => Arc::new(SeededTosses::new(s)),
            None => Arc::new(ZeroTosses),
        })
    }

    fn threads(&self) -> Result<usize, String> {
        match self.flags.get("threads") {
            None => Ok(1),
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&t| t >= 1)
                .ok_or_else(|| format!("bad --threads value `{v}`")),
        }
    }

    fn sweep(&self) -> Result<Sweep, String> {
        Ok(Sweep::with_threads(self.threads()?))
    }

    fn json(&self) -> Option<PathBuf> {
        self.flags.get("json").map(PathBuf::from)
    }

    /// Writes the subcommand's result tables as a `{"tables":[…]}`
    /// artifact when `--json` was given — the same schema the `table_*`
    /// binaries emit.
    fn emit_json(&self, tables: &[&Table]) -> Result<(), String> {
        if let Some(path) = self.json() {
            let artifact = Table::render_json_artifact(tables);
            llsc_lowerbound::shmem::atomic_write(&path, artifact)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }

    fn alg(&self) -> Result<Box<dyn Algorithm>, String> {
        let name = self
            .flags
            .get("alg")
            .ok_or_else(|| "missing --alg (see `llsc list`)".to_string())?;
        all_algorithms()
            .into_iter()
            .find(|a| a.name() == name)
            .ok_or_else(|| format!("unknown algorithm `{name}` (see `llsc list`)"))
    }
}

/// Flags that take no value (presence alone is the setting).
const BARE_FLAGS: &[&str] = &["safety-only"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        if BARE_FLAGS.contains(&key) {
            flags.insert(key.to_string(), String::new());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(Opts { flags })
}

fn all_algorithms() -> Vec<Box<dyn Algorithm>> {
    correct_algorithms()
        .into_iter()
        .chain(randomized_algorithms())
        .chain(hardened_algorithms())
        .chain(recoverable_algorithms())
        .chain(strawman_algorithms())
        .collect()
}

fn cmd_list() -> Result<(), String> {
    println!("execution backends:");
    for (name, what) in [
        ("sim", "deterministic discrete-event simulator"),
        ("atomic", "OS threads over CAS-built LL/SC (llsc-atomics)"),
    ] {
        println!("  {name:<24} {what}");
    }
    #[allow(clippy::type_complexity)]
    let sections: [(&str, Vec<Box<dyn Algorithm>>, &str); 5] = [
        (
            "correct wakeup algorithms",
            correct_algorithms(),
            "sim, atomic",
        ),
        (
            "randomized wakeup algorithms",
            randomized_algorithms(),
            "sim, atomic",
        ),
        (
            "fault-hardened wakeup algorithms",
            hardened_algorithms(),
            "sim, atomic",
        ),
        // Crash-recovery runs on both backends: the simulator's
        // RecoveringCrashScheduler kills and revives virtual processes,
        // and the hardware supervisor (llsc-atomics) kills the victim's
        // OS thread and respawns it against the shared memory image
        // under a bounded respawn budget. The recoverable mutex returns
        // lock tokens, not wakeup bits — it is exercised by E19/E20 and
        // the repro subcommands, not the Theorem 6.1 driver.
        (
            "crash-recoverable algorithms (E19/E20)",
            recoverable_algorithms(),
            "sim, atomic",
        ),
        // The strawmen exist to be refuted by the deterministic
        // Theorem 6.1 driver; the hardware backend cannot replay the
        // adversary's counterexample schedule.
        (
            "strawmen (deliberately broken)",
            strawman_algorithms(),
            "sim",
        ),
    ];
    for (title, algorithms, backends) in sections {
        println!("{title} (any --n >= 2):");
        for a in algorithms {
            println!("  {:<24} backends: {backends}", a.name());
        }
    }
    println!("universal constructions (--imp, any --n >= 2):");
    for (key, what) in [
        ("adt", "oblivious combining tree, Theta(log n)"),
        ("naive", "combining tree baseline"),
        ("herlihy", "announce-and-help, Theta(n)"),
        ("direct", "non-oblivious LL/SC loop, O(1) uncontended"),
    ] {
        println!("  {key:<24} backends: sim, atomic  ({what})");
    }
    println!("experiments:");
    for (id, what, backends) in [
        (
            "e1-e17, e19",
            "table_* regenerators (see EXPERIMENTS.md)",
            "sim",
        ),
        (
            "e18",
            "bench_e18 / `llsc bench`: real-contention throughput",
            "sim, atomic",
        ),
        (
            "e20",
            "table_e20 (goldenable sim half) + bench_e20 chaos validation",
            "sim + atomic",
        ),
        (
            "xcheck",
            "`llsc xcheck`: simulator vs hardware cross-validation",
            "sim + atomic",
        ),
    ] {
        println!("  {id:<24} backends: {backends:<12} {what}");
    }
    Ok(())
}

fn cmd_xcheck(opts: &Opts) -> Result<(), String> {
    let n = match opts.flags.get("n") {
        None => 4,
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 2)
            .ok_or_else(|| format!("bad --n value `{v}` (xcheck needs n >= 2)"))?,
    };
    let trials = match opts.flags.get("trials") {
        None => 8,
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&t| t >= 1)
            .ok_or_else(|| format!("bad --trials value `{v}`"))?,
    };
    let cfg = XcheckConfig {
        n,
        trials,
        // Polling constructions (the adt tree parks followers on a
        // spin loop) have schedule-dependent counts on real threads;
        // --safety-only keeps the history checks and demotes the
        // count envelope to advisory.
        check_envelope: !opts.flags.contains_key("safety-only"),
        ..XcheckConfig::default()
    };
    let mut reports = Vec::new();
    // With neither --alg nor --imp, cross-validate one of each — a
    // wakeup algorithm and a universal construction.
    let default_both = !opts.flags.contains_key("alg") && !opts.flags.contains_key("imp");
    if opts.flags.contains_key("alg") || default_both {
        let alg = if default_both {
            all_algorithms()
                .into_iter()
                .find(|a| a.name() == "counter-wakeup")
                .expect("counter-wakeup is registered")
        } else {
            opts.alg()?
        };
        reports.push(
            xcheck_wakeup(alg.as_ref(), &cfg).map_err(|e| format!("xcheck wakeup failed: {e}"))?,
        );
    }
    if opts.flags.contains_key("imp") || default_both {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp = universal_imp(opts, &spec, if default_both { "direct" } else { "adt" })?;
        let ops = vec![FetchIncrement::op(); n];
        reports.push(
            xcheck_universal(imp.as_ref(), spec.as_ref(), &ops, &cfg)
                .map_err(|e| format!("xcheck universal failed: {e}"))?,
        );
    }
    let mut failed = false;
    for report in &reports {
        print!("{}", report.render());
        failed |= !report.ok;
    }
    if failed {
        return Err("cross-validation FAILED: the backends disagree".into());
    }
    Ok(())
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    let backends = match opts
        .flags
        .get("backend")
        .map(String::as_str)
        .unwrap_or("both")
    {
        "both" => vec![BackendKind::Sim, BackendKind::Atomic],
        one => vec![BackendKind::parse(one)
            .ok_or_else(|| format!("unknown --backend `{one}` (sim|atomic|both)"))?],
    };
    let ns: Vec<usize> = match opts.flags.get("ns") {
        None => vec![2, 4],
        Some(list) => {
            let parsed: Option<Vec<usize>> =
                list.split(',').map(|s| s.trim().parse().ok()).collect();
            parsed
                .filter(|ns| !ns.is_empty() && ns.iter().all(|&n| n >= 1))
                .ok_or_else(|| format!("bad --ns value `{list}` (e.g. `2,4`)"))?
        }
    };
    let samples = match opts.flags.get("samples") {
        None => 5,
        Some(v) => v
            .parse::<u32>()
            .ok()
            .filter(|&s| s >= 1)
            .ok_or_else(|| format!("bad --samples value `{v}`"))?,
    };
    let spec = Arc::new(FetchIncrement::new(64));
    let imp = DirectLlSc::new(spec);
    let wakeup = all_algorithms()
        .into_iter()
        .find(|a| a.name() == "counter-wakeup")
        .expect("counter-wakeup is registered");
    for backend in backends {
        for &n in &ns {
            let row = e18_case(
                "wakeup-counter",
                wakeup.as_ref(),
                backend,
                n,
                samples,
                10_000_000,
            )
            .map_err(|e| {
                format!(
                    "e18 wakeup-counter on {} (n={n}) failed: {e}",
                    backend.name()
                )
            })?;
            print_e18_row(&row);
            let ops = vec![FetchIncrement::op(); n];
            let alg = llsc_lowerbound::universal::ImplAlgorithm::new(&imp, &ops);
            let row = e18_case("universal-direct", &alg, backend, n, samples, 10_000_000).map_err(
                |e| {
                    format!(
                        "e18 universal-direct on {} (n={n}) failed: {e}",
                        backend.name()
                    )
                },
            )?;
            print_e18_row(&row);
        }
    }
    Ok(())
}

fn print_e18_row(r: &llsc_lowerbound::bench::xcheck::E18Row) {
    println!(
        "e18 {:<16} backend={:<6} n={:<3} min {:>9.3}ms mean {:>9.3}ms max_ops={} total_ops={} dsm_rmrs={}",
        r.workload,
        r.backend.name(),
        r.n,
        r.wall_ms_min,
        r.wall_ms_mean,
        r.max_ops,
        r.total_ops,
        r.dsm_rmrs
    );
}

/// Resolves the `--imp` flag (with `default` when absent) against the
/// universal-construction registry.
fn universal_imp(
    opts: &Opts,
    spec: &Arc<FetchIncrement>,
    default: &str,
) -> Result<Box<dyn ObjectImplementation>, String> {
    Ok(
        match opts.flags.get("imp").map(String::as_str).unwrap_or(default) {
            "adt" => Box::new(AdtTreeUniversal::new(spec.clone())),
            "naive" => Box::new(CombiningTreeUniversal::new(spec.clone())),
            "herlihy" => Box::new(HerlihyUniversal::new(spec.clone())),
            "direct" => Box::new(DirectLlSc::new(spec.clone())),
            other => return Err(format!("unknown --imp `{other}`")),
        },
    )
}

fn cmd_wakeup(opts: &Opts) -> Result<(), String> {
    let alg = opts.alg()?;
    let n = opts.n()?;
    let rep = verify_lower_bound(alg.as_ref(), n, opts.toss()?, &AdversaryConfig::default())
        .map_err(|e| format!("wakeup run failed: {e}"))?;
    println!("{rep}");
    println!("wakeup: {}", rep.wakeup);
    if let Some(refutation) = &rep.refutation {
        println!(
            "refuted: |S| = {}, winner-returns-1-in-(S,A)-run = {}, {} process(es) never step",
            refutation.s.len(),
            refutation.winner_returns_one_in_s_run,
            refutation.never_step.len()
        );
        for v in &refutation.violations {
            println!("  violation: {v}");
        }
    }
    let mut table = Table::new(
        "wakeup: Theorem 6.1 driver",
        [
            "algorithm",
            "n",
            "rounds",
            "winner steps",
            "max steps",
            "log4(n)",
            "bound",
        ],
    );
    table.row([
        rep.algorithm.clone(),
        rep.n.to_string(),
        rep.rounds.to_string(),
        rep.winner_steps.to_string(),
        rep.max_steps.to_string(),
        format!("{:.2}", rep.log4_n),
        if rep.bound_holds { "HOLDS" } else { "REFUTED" }.to_string(),
    ]);
    opts.emit_json(&[&table])?;
    Ok(())
}

fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let alg = opts.alg()?;
    let n = opts.n()?;
    let all = build_all_run(alg.as_ref(), n, opts.toss()?, &AdversaryConfig::default())
        .map_err(|e| format!("trace run failed: {e}"))?;
    print!("{}", trace_all_run(&all, 50));
    Ok(())
}

fn cmd_stress(opts: &Opts) -> Result<(), String> {
    let alg = opts.alg()?;
    let n = opts.n()?;
    let sweep = opts.sweep()?;
    let report = stress_wakeup_sweep(
        alg.as_ref(),
        n,
        opts.toss()?,
        &standard_portfolio(n, 5),
        5_000_000,
        &sweep,
    )
    .map_err(|e| format!("stress run failed: {e}"))?;
    println!("{report}");
    for f in &report.failures {
        println!("  under {}:", f.schedule);
        for v in &f.violations {
            println!("    {v}");
        }
    }
    let mut table = Table::new(
        "stress: partial-schedule sweep",
        ["algorithm", "n", "schedules", "passed", "failures"],
    );
    table.row([
        alg.name().to_string(),
        n.to_string(),
        report.schedules_tried.to_string(),
        report.passed.to_string(),
        report.failures.len().to_string(),
    ]);
    opts.emit_json(&[&table])?;
    Ok(())
}

fn cmd_indist(opts: &Opts) -> Result<(), String> {
    let alg = opts.alg()?;
    let n = opts.n()?;
    if n > 12 {
        return Err("indist enumerates all 2^n subsets; use --n <= 12".into());
    }
    let toss = opts.toss()?;
    let cfg = AdversaryConfig::default();
    let sweep = opts.sweep()?;
    let report = indist_all_subsets(alg.as_ref(), n, toss, &cfg, true, &sweep)
        .map_err(|e| format!("indist run failed: {e}"))?;
    if !report.ok() {
        for v in &report.violations {
            println!("VIOLATION for {v}");
        }
        return Err("indistinguishability violated".into());
    }
    println!(
        "Lemma 5.2 + appendix claims: all {} subsets pass ({} comparisons, {} claim instances, 0 violations)",
        report.subsets, report.comparisons, report.claim_instances
    );
    let mut table = Table::new(
        "indist: Lemma 5.2 over all subsets",
        [
            "algorithm",
            "n",
            "subsets",
            "comparisons",
            "claim instances",
            "violations",
        ],
    );
    table.row([
        alg.name().to_string(),
        n.to_string(),
        report.subsets.to_string(),
        report.comparisons.to_string(),
        report.claim_instances.to_string(),
        report.violations.len().to_string(),
    ]);
    opts.emit_json(&[&table])?;
    Ok(())
}

fn cmd_secretive(opts: &Opts) -> Result<(), String> {
    let n = opts.n()?;
    let cfg = match opts.seed()? {
        None => {
            println!("the Section-4 chain: p_i moves R_i into R_(i+1)");
            MoveConfig::from_iter(
                (0..n).map(|i| (ProcessId(i), RegisterId(i as u64), RegisterId(i as u64 + 1))),
            )
        }
        Some(seed) => {
            println!("random move configuration (seed {seed})");
            random_move_config(n, (n as u64 / 2).max(2), seed)
        }
    };
    println!("config: {cfg}");
    let sigma = secretive_complete_schedule(&cfg);
    let names: Vec<String> = sigma.iter().map(ToString::to_string).collect();
    println!("secretive schedule: [{}]", names.join(", "));
    println!("is_secretive: {}", is_secretive(&sigma, &cfg));
    let mut worst = 0;
    for r in cfg.destinations() {
        let m = movers(r, &sigma, &cfg);
        worst = worst.max(m.len());
        let ms: Vec<String> = m.iter().map(ToString::to_string).collect();
        println!("  movers({r}) = [{}]", ms.join(", "));
    }
    println!("worst movers-list length: {worst} (Lemma 4.1 cap: 2)");
    Ok(())
}

/// Splits the repro subcommands' leading positional `<file>` argument
/// from the flags that follow it.
fn split_file_arg(rest: &[String]) -> Result<(&String, Opts), String> {
    let Some((file, flags)) = rest.split_first() else {
        return Err("missing <file> argument (a repro case written by --repro-dir)".into());
    };
    if file.starts_with("--") {
        return Err(format!(
            "the repro file must come before flags, got `{file}`"
        ));
    }
    Ok((file, parse_opts(flags)?))
}

fn load_case(file: &str) -> Result<ReproCase, String> {
    let json = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    ReproCase::from_json(&json).map_err(|e| format!("{file}: {e}"))
}

fn cmd_replay(rest: &[String]) -> Result<(), String> {
    let (file, _opts) = split_file_arg(rest)?;
    let case = load_case(file)?;
    let run = run_case(&case)?;
    println!(
        "case: experiment={} algorithm={} n={} size={}",
        case.experiment,
        case.algorithm,
        case.n,
        case.size()
    );
    if !case.outcome.is_empty() {
        println!("recorded: class={} outcome={}", case.class, case.outcome);
    }
    println!(
        "replayed: class={} outcome={}",
        run.class, run.outcome_debug
    );
    if !case.outcome.is_empty() && run.outcome_debug != case.outcome {
        return Err(format!(
            "replay DIVERGED: recorded outcome `{}`, replayed `{}`",
            case.outcome, run.outcome_debug
        ));
    }
    if !case.class.is_empty() && run.class != case.class {
        return Err(format!(
            "replay DIVERGED: recorded class `{}`, replayed `{}`",
            case.class, run.class
        ));
    }
    if case.outcome.is_empty() && case.class.is_empty() {
        println!("no recorded outcome to compare against");
    } else {
        println!("replay matches the recorded outcome");
    }
    Ok(())
}

fn cmd_shrink(rest: &[String]) -> Result<(), String> {
    let (file, opts) = split_file_arg(rest)?;
    let case = load_case(file)?;
    let budget = match opts.flags.get("max-replays") {
        None => 400,
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&k| k >= 1)
            .ok_or_else(|| format!("bad --max-replays value `{v}`"))?,
    };
    let report = shrink_case(&case, budget)?;
    let mut log = String::new();
    for line in &report.log {
        eprintln!("{line}");
        log.push_str(line);
        log.push('\n');
    }
    let summary = format!(
        "shrunk size {} -> {} (class `{}`) in {} replay(s)",
        report.initial_size, report.final_size, report.case.class, report.replays
    );
    eprintln!("{summary}");
    log.push_str(&summary);
    log.push('\n');
    if let Some(path) = opts.flags.get("log") {
        llsc_lowerbound::shmem::atomic_write(std::path::Path::new(path), &log)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    match opts.flags.get("out") {
        Some(path) => {
            llsc_lowerbound::shmem::atomic_write(std::path::Path::new(path), report.case.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{}", report.case.to_json()),
    }
    Ok(())
}

fn cmd_universal(opts: &Opts) -> Result<(), String> {
    let n = opts.n()?;
    let spec = Arc::new(FetchIncrement::new(32));
    let imp = universal_imp(opts, &spec, "adt")?;
    let schedule = match opts
        .flags
        .get("schedule")
        .map(String::as_str)
        .unwrap_or("adversary")
    {
        "adversary" => ScheduleKind::Adversary,
        "rr" => ScheduleKind::RoundRobin,
        "seq" => ScheduleKind::Sequential,
        "random" => ScheduleKind::RandomInterleave {
            seed: opts.seed()?.unwrap_or(1),
        },
        other => return Err(format!("unknown --schedule `{other}`")),
    };
    let cfg = MeasureConfig {
        check_linearizability: n <= 64,
        ..MeasureConfig::default()
    };
    let ops = vec![FetchIncrement::op(); n];
    let result = measure(imp.as_ref(), spec.as_ref(), n, &ops, schedule, &cfg)
        .map_err(|e| format!("universal run failed: {e}"))?;
    println!("{result}");
    println!("per-process ops: {:?}", result.per_process_ops);
    Ok(())
}

/// SIGINT/SIGTERM wiring for `llsc job`: the handler (required to be
/// async-signal-safe, so it only stores two atomics) raises both a local
/// interrupted flag and the global sweep abort, converting in-flight
/// trials into prompt panics the job runner classifies as an interrupt
/// and answers with a final checkpoint flush.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        llsc_lowerbound::shmem::sweep::request_sweep_abort();
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs the handlers for SIGINT and SIGTERM.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// `true` once either signal has been delivered.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

/// `llsc job run|resume|status` — the checkpointed, resumable front end
/// of the E4/E6/E13/E20 sweeps (see `llsc_lowerbound::bench::job`).
fn cmd_job(args: &[String]) -> ExitCode {
    use llsc_lowerbound::bench::job::{
        job_exit_code, job_status, resume_job, run_job, JobControl, JobExperiment, JobSpec,
    };

    fn parse_job(args: &[String]) -> Result<(String, Opts), String> {
        let (action, rest) = args
            .split_first()
            .ok_or("job needs an action: run, resume, or status")?;
        Ok((action.clone(), parse_opts(rest)?))
    }

    fn spec_from(opts: &Opts) -> Result<JobSpec, String> {
        let tag = opts
            .flags
            .get("experiment")
            .ok_or("job run needs --experiment e4|e6|e13|e20")?;
        let mut spec = JobSpec::default_for(JobExperiment::parse(tag)?);
        if let Some(name) = opts.flags.get("name") {
            spec.name = name.clone();
        }
        let parse_u64 = |key: &str, target: &mut u64| -> Result<(), String> {
            if let Some(v) = opts.flags.get(key) {
                *target = v.parse().map_err(|_| format!("bad --{key} value `{v}`"))?;
            }
            Ok(())
        };
        parse_u64("seed", &mut spec.seed)?;
        parse_u64("samples", &mut spec.samples)?;
        parse_u64("recovery-delay", &mut spec.recovery_delay)?;
        parse_u64("respawn-budget", &mut spec.respawn_budget)?;
        parse_u64("backoff-ms", &mut spec.backoff_ms)?;
        parse_u64("chunk-timeout-ms", &mut spec.chunk_timeout_ms)?;
        parse_u64("max-events", &mut spec.max_events)?;
        if let Some(v) = opts.flags.get("chunks") {
            spec.chunks = v.parse().map_err(|_| format!("bad --chunks value `{v}`"))?;
        }
        if let Some(v) = opts.flags.get("retries") {
            spec.retries = v
                .parse()
                .map_err(|_| format!("bad --retries value `{v}`"))?;
        }
        let parse_list = |key: &str| -> Result<Option<Vec<u64>>, String> {
            match opts.flags.get(key) {
                None => Ok(None),
                Some(list) => list
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse::<u64>()
                            .map_err(|_| format!("bad --{key} entry `{v}`"))
                    })
                    .collect::<Result<Vec<u64>, String>>()
                    .map(Some),
            }
        };
        if let Some(ns) = parse_list("ns")? {
            spec.ns = ns.into_iter().map(|n| n as usize).collect();
        }
        if let Some(seeds) = parse_list("toss-seeds")? {
            spec.toss_seeds = seeds;
        }
        if let Some(intensities) = parse_list("intensities")? {
            spec.intensities = intensities;
        }
        // Round-trip through the canonical form so flag validation matches
        // file validation exactly.
        JobSpec::parse(&spec.render())
    }

    fn control_with_signals() -> JobControl {
        signals::install();
        let control = JobControl::new();
        let flag = control.interrupt.clone();
        // The handler itself may only touch atomics; this relay forwards
        // the static flag into the runner's shared handle.
        std::thread::spawn(move || loop {
            if signals::interrupted() {
                flag.store(true, std::sync::atomic::Ordering::SeqCst);
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        control
    }

    let run = || -> Result<u8, String> {
        let (action, opts) = parse_job(args)?;
        let dir = PathBuf::from(
            opts.flags
                .get("dir")
                .ok_or("job needs --dir <job directory>")?,
        );
        match action.as_str() {
            "run" => {
                let spec = spec_from(&opts)?;
                let mut control = control_with_signals();
                // Crash simulation for tests and smoke scripts: stop (as
                // if interrupted) after N chunks, deterministically.
                if let Some(v) = opts.flags.get("stop-after-chunks") {
                    control.stop_after_chunks = Some(
                        v.parse()
                            .map_err(|_| format!("bad --stop-after-chunks value `{v}`"))?,
                    );
                }
                let report = run_job(&dir, &spec, opts.threads()?, &control)?;
                report_summary(&report);
                Ok(job_exit_code(report.status))
            }
            "resume" => {
                let report = resume_job(&dir, opts.threads()?, &control_with_signals())?;
                report_summary(&report);
                Ok(job_exit_code(report.status))
            }
            "status" => {
                print!("{}", job_status(&dir)?);
                Ok(0)
            }
            other => Err(format!(
                "unknown job action `{other}` (run, resume, status)"
            )),
        }
    };

    fn report_summary(report: &llsc_lowerbound::bench::job::JobReport) {
        for note in &report.fallback_notes {
            eprintln!("skipped invalid checkpoint: {note}");
        }
        for f in &report.failed {
            eprintln!(
                "chunk {} failed after {} attempt(s) [{}]: {} ({})",
                f.chunk, f.attempts, f.kind, f.message, f.context
            );
        }
        eprintln!(
            "job {}: {}/{} chunk(s) complete, {} failed",
            report.status.tag(),
            report.completed_chunks,
            report.total_chunks,
            report.failed.len()
        );
        if let Some(path) = &report.artifact {
            eprintln!("wrote {}", path.display());
        }
    }

    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
