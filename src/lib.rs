//! # llsc-lowerbound
//!
//! An executable reproduction of Prasad Jayanti's PODC 1998 paper
//! *"A Time Complexity Lower Bound for Randomized Implementations of Some
//! Shared Objects"*: the shared-memory model with **LL / SC / validate /
//! swap / move** operations, the five-phase round adversary, the
//! `UP`-set bookkeeping and indistinguishability machinery behind the
//! `Ω(log n)` wakeup lower bound, the Theorem 6.2 object reductions, and
//! the matching `O(log n)` oblivious universal construction that makes
//! the bound tight.
//!
//! This crate is a facade: it re-exports the member crates under
//! stable module names. See the workspace `README.md` for a tour and
//! `DESIGN.md`/`EXPERIMENTS.md` for the paper-to-code mapping.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`shmem`] | `llsc-shmem` | Section-3 model: registers, operations, processes, schedulers, runs, executor, the [`shmem::ExecutionBackend`] trait and shared JSON helpers |
//! | [`atomics`] | `llsc-atomics` | The real-hardware backend: LL/SC/VL built from pointer-width CAS, thread-per-process driver |
//! | [`core`] | `llsc-core` | Sections 4–6: secretive schedules, adversary runs, `UP` sets, indistinguishability, the Theorem 6.1 driver |
//! | [`objects`] | `llsc-objects` | Sequential specs of the Theorem 6.2 types; linearizability checking |
//! | [`wakeup`] | `llsc-wakeup` | Wakeup algorithms (correct, randomized, strawmen) and the object reductions |
//! | [`universal`] | `llsc-universal` | Oblivious universal constructions and the direct LL/SC escape hatch |
//! | [`bench`] | `llsc-bench` | E1–E18 experiment regenerators, the deterministic parallel harness, failure replay/shrinking, simulator ⇄ hardware cross-validation ([`bench::xcheck`]), and the table/JSON renderers |
//!
//! ## Quickstart
//!
//! ```
//! use llsc_lowerbound::core::{verify_lower_bound, ceil_log4, AdversaryConfig};
//! use llsc_lowerbound::wakeup::TournamentWakeup;
//! use llsc_lowerbound::shmem::ZeroTosses;
//! use std::sync::Arc;
//!
//! let n = 256;
//! let report = verify_lower_bound(
//!     &TournamentWakeup, n, Arc::new(ZeroTosses), &AdversaryConfig::default())
//!     .expect("the adversary run stays within the default budgets");
//! assert!(report.wakeup.ok());
//! // Theorem 6.1: the winner performed at least ceil(log4 n) = 4 shared ops...
//! assert!(report.winner_steps >= ceil_log4(n));
//! // ...and the tournament shows the bound is tight within a factor ~2.
//! assert!(report.winner_steps <= 2 * ceil_log4(n) + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use llsc_atomics as atomics;
pub use llsc_bench as bench;
pub use llsc_core as core;
pub use llsc_objects as objects;
pub use llsc_shmem as shmem;
pub use llsc_universal as universal;
pub use llsc_wakeup as wakeup;
