//! Property-based linearizability testing of the universal constructions:
//! random operation mixes, random schedules, every construction.
//!
//! The unit tests exercise uniform workloads (everyone increments,
//! everyone dequeues); these properties randomise the operations per
//! process and the interleaving, and require the observed history to
//! linearize against the sequential specification.
//!
//! The random cases are driven by the repository's deterministic
//! [`XorShift64`] generator rather than an external property-testing
//! framework (the build environment is offline), so every run explores the
//! exact same case set; a failure message names the seed that produced it.

use llsc_lowerbound::objects::{Counter, ObjectSpec, Queue, Stack};
use llsc_lowerbound::shmem::rng::XorShift64;
use llsc_lowerbound::shmem::Value;
use llsc_lowerbound::universal::{
    measure, AdtTreeUniversal, CombiningTreeUniversal, DirectLlSc, HerlihyUniversal, MeasureConfig,
    MsQueue, ObjectImplementation, ScheduleKind, TreiberStack,
};
use std::sync::Arc;

const CASES: u64 = 24;

/// Builds each construction over the given spec.
fn constructions(spec: Arc<dyn ObjectSpec>) -> Vec<Box<dyn ObjectImplementation>> {
    vec![
        Box::new(AdtTreeUniversal::new(spec.clone())),
        Box::new(CombiningTreeUniversal::new(spec.clone())),
        Box::new(HerlihyUniversal::new(spec.clone())),
        Box::new(DirectLlSc::new(spec.clone())),
    ]
}

fn random_queue_op(rng: &mut XorShift64) -> Value {
    if rng.chance(1, 2) {
        Queue::enqueue_op(Value::from(rng.range_i64(0, 100)))
    } else {
        Queue::dequeue_op()
    }
}

fn random_stack_op(rng: &mut XorShift64) -> Value {
    if rng.chance(1, 2) {
        Stack::push_op(Value::from(rng.range_i64(0, 100)))
    } else {
        Stack::pop_op()
    }
}

fn random_counter_op(rng: &mut XorShift64) -> Value {
    if rng.chance(1, 2) {
        Counter::increment_op()
    } else {
        Counter::read_op()
    }
}

/// Mixed queue operations linearize through every construction — and
/// through the structural Michael-Scott queue — under a random
/// schedule (and the adversary).
#[test]
fn queue_mixes_linearize() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x0E0E + case);
        let n = 2 + rng.index(5);
        let ops: Vec<Value> = (0..n).map(|_| random_queue_op(&mut rng)).collect();
        let initial: Vec<i64> = (0..rng.index(4)).map(|_| rng.range_i64(0, 50)).collect();
        let seed = rng.below(500);
        let items: Vec<Value> = initial.into_iter().map(Value::from).collect();
        let spec: Arc<dyn ObjectSpec> = Arc::new(Queue::with_items(items.clone()));
        let mut imps = constructions(spec.clone());
        imps.push(Box::new(MsQueue::new(Queue::with_items(items))));
        for imp in imps {
            for kind in [
                ScheduleKind::RandomInterleave { seed },
                ScheduleKind::Adversary,
            ] {
                let r = measure(
                    imp.as_ref(),
                    spec.as_ref(),
                    n,
                    &ops,
                    kind,
                    &MeasureConfig::default(),
                )
                .unwrap();
                assert!(
                    r.linearizable,
                    "case {case}: {} under {kind:?}: history not linearizable\n{}",
                    imp.name(),
                    r.history
                );
            }
        }
    }
}

/// Mixed stack operations linearize through every construction — and
/// through the structural Treiber stack.
#[test]
fn stack_mixes_linearize() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x57A5 + case);
        let n = 2 + rng.index(5);
        let ops: Vec<Value> = (0..n).map(|_| random_stack_op(&mut rng)).collect();
        let seed = rng.below(500);
        let spec: Arc<dyn ObjectSpec> = Arc::new(Stack::new());
        let mut imps = constructions(spec.clone());
        imps.push(Box::new(TreiberStack::new(Stack::new())));
        for imp in imps {
            let r = measure(
                imp.as_ref(),
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::RandomInterleave { seed },
                &MeasureConfig::default(),
            )
            .unwrap();
            assert!(r.linearizable, "case {case}: {}", imp.name());
        }
    }
}

/// Counter increments/reads linearize, and the observed reads never
/// exceed the number of increments.
#[test]
fn counter_mixes_linearize() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xC072 + case);
        let n = 2 + rng.index(6);
        let ops: Vec<Value> = (0..n).map(|_| random_counter_op(&mut rng)).collect();
        let seed = rng.below(500);
        let total_incs = ops
            .iter()
            .filter(|o| o == &&Counter::increment_op())
            .count() as i128;
        let spec: Arc<dyn ObjectSpec> = Arc::new(Counter::new(16));
        for imp in constructions(spec.clone()) {
            let r = measure(
                imp.as_ref(),
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::RandomInterleave { seed },
                &MeasureConfig::default(),
            )
            .unwrap();
            assert!(r.linearizable, "case {case}: {}", imp.name());
            for (p, resp) in r.responses.iter().enumerate() {
                if ops[p] == Counter::read_op() {
                    let v = resp.as_int().expect("read returns an int");
                    assert!(
                        (0..=total_incs).contains(&v),
                        "case {case}: {}: read {v} of {total_incs} increments",
                        imp.name()
                    );
                }
            }
        }
    }
}

/// The constructions agree with each other on commutative workloads:
/// the multiset of fetch&increment responses is {0..n-1} for all of
/// them under any schedule.
#[test]
fn constructions_agree_on_increment_multisets() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xA67E + case);
        let n = 2 + rng.index(6);
        let seed = rng.below(500);
        use llsc_lowerbound::objects::FetchIncrement;
        let spec: Arc<dyn ObjectSpec> = Arc::new(FetchIncrement::new(16));
        let ops = vec![FetchIncrement::op(); n];
        for imp in constructions(spec.clone()) {
            let r = measure(
                imp.as_ref(),
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::RandomInterleave { seed },
                &MeasureConfig::default(),
            )
            .unwrap();
            let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(
                got,
                (0..n as i128).collect::<Vec<_>>(),
                "case {case}: {}",
                imp.name()
            );
        }
    }
}
