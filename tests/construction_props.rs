//! Property-based linearizability testing of the universal constructions:
//! random operation mixes, random schedules, every construction.
//!
//! The unit tests exercise uniform workloads (everyone increments,
//! everyone dequeues); these properties randomise the operations per
//! process and the interleaving, and require the observed history to
//! linearize against the sequential specification.

use llsc_lowerbound::objects::{Counter, ObjectSpec, Queue, Stack};
use llsc_lowerbound::shmem::Value;
use llsc_lowerbound::universal::{
    measure, AdtTreeUniversal, CombiningTreeUniversal, DirectLlSc, HerlihyUniversal,
    MeasureConfig, MsQueue, ObjectImplementation, ScheduleKind, TreiberStack,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds each construction over the given spec.
fn constructions(spec: Arc<dyn ObjectSpec>) -> Vec<Box<dyn ObjectImplementation>> {
    vec![
        Box::new(AdtTreeUniversal::new(spec.clone())),
        Box::new(CombiningTreeUniversal::new(spec.clone())),
        Box::new(HerlihyUniversal::new(spec.clone())),
        Box::new(DirectLlSc::new(spec.clone())),
    ]
}

fn queue_op_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..100).prop_map(|v| Queue::enqueue_op(Value::from(v))),
        Just(Queue::dequeue_op()),
    ]
}

fn stack_op_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..100).prop_map(|v| Stack::push_op(Value::from(v))),
        Just(Stack::pop_op()),
    ]
}

fn counter_op_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Counter::increment_op()),
        Just(Counter::read_op()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed queue operations linearize through every construction — and
    /// through the structural Michael-Scott queue — under a random
    /// schedule (and the adversary).
    #[test]
    fn queue_mixes_linearize(
        ops in prop::collection::vec(queue_op_strategy(), 2..7),
        initial in prop::collection::vec(0i64..50, 0..4),
        seed in 0u64..500,
    ) {
        let n = ops.len();
        let items: Vec<Value> = initial.into_iter().map(Value::from).collect();
        let spec: Arc<dyn ObjectSpec> = Arc::new(Queue::with_items(items.clone()));
        let mut imps = constructions(spec.clone());
        imps.push(Box::new(MsQueue::new(Queue::with_items(items))));
        for imp in imps {
            for kind in [ScheduleKind::RandomInterleave { seed }, ScheduleKind::Adversary] {
                let r = measure(
                    imp.as_ref(),
                    spec.as_ref(),
                    n,
                    &ops,
                    kind,
                    &MeasureConfig::default(),
                );
                prop_assert!(
                    r.linearizable,
                    "{} under {kind:?}: history not linearizable\n{}",
                    imp.name(),
                    r.history
                );
            }
        }
    }

    /// Mixed stack operations linearize through every construction — and
    /// through the structural Treiber stack.
    #[test]
    fn stack_mixes_linearize(
        ops in prop::collection::vec(stack_op_strategy(), 2..7),
        seed in 0u64..500,
    ) {
        let n = ops.len();
        let spec: Arc<dyn ObjectSpec> = Arc::new(Stack::new());
        let mut imps = constructions(spec.clone());
        imps.push(Box::new(TreiberStack::new(Stack::new())));
        for imp in imps {
            let r = measure(
                imp.as_ref(),
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::RandomInterleave { seed },
                &MeasureConfig::default(),
            );
            prop_assert!(r.linearizable, "{}", imp.name());
        }
    }

    /// Counter increments/reads linearize, and the observed reads never
    /// exceed the number of increments.
    #[test]
    fn counter_mixes_linearize(
        ops in prop::collection::vec(counter_op_strategy(), 2..8),
        seed in 0u64..500,
    ) {
        let n = ops.len();
        let total_incs = ops
            .iter()
            .filter(|o| o == &&Counter::increment_op())
            .count() as i128;
        let spec: Arc<dyn ObjectSpec> = Arc::new(Counter::new(16));
        for imp in constructions(spec.clone()) {
            let r = measure(
                imp.as_ref(),
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::RandomInterleave { seed },
                &MeasureConfig::default(),
            );
            prop_assert!(r.linearizable, "{}", imp.name());
            for (p, resp) in r.responses.iter().enumerate() {
                if ops[p] == Counter::read_op() {
                    let v = resp.as_int().expect("read returns an int");
                    prop_assert!(
                        (0..=total_incs).contains(&v),
                        "{}: read {v} of {total_incs} increments",
                        imp.name()
                    );
                }
            }
        }
    }

    /// The constructions agree with each other on commutative workloads:
    /// the multiset of fetch&increment responses is {0..n-1} for all of
    /// them under any schedule.
    #[test]
    fn constructions_agree_on_increment_multisets(
        n in 2usize..8,
        seed in 0u64..500,
    ) {
        use llsc_lowerbound::objects::FetchIncrement;
        let spec: Arc<dyn ObjectSpec> = Arc::new(FetchIncrement::new(16));
        let ops = vec![FetchIncrement::op(); n];
        for imp in constructions(spec.clone()) {
            let r = measure(
                imp.as_ref(),
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::RandomInterleave { seed },
                &MeasureConfig::default(),
            );
            let mut got: Vec<i128> = r.responses.iter().map(|v| v.as_int().unwrap()).collect();
            got.sort_unstable();
            prop_assert_eq!(got, (0..n as i128).collect::<Vec<_>>(), "{}", imp.name());
        }
    }
}
