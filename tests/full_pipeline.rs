//! End-to-end integration: every shipped wakeup algorithm and every
//! Theorem 6.2 reduction, through the full lower-bound pipeline
//! (adversary run → wakeup check → UP tracking → bound verification →
//! refutation construction where applicable).

use llsc_lowerbound::core::{
    build_all_run, ceil_log4, check_wakeup, estimate_expected_complexity, verify_lower_bound,
    AdversaryConfig, WakeupViolation,
};
use llsc_lowerbound::shmem::{SeededTosses, ZeroTosses};
use llsc_lowerbound::universal::{AdtTreeUniversal, HerlihyUniversal, MsQueue, TreiberStack};
use llsc_lowerbound::wakeup::{
    correct_algorithms, randomized_algorithms, strawman_algorithms, ObjectWakeup, ReductionKind,
};
use std::sync::Arc;

#[test]
fn correct_algorithms_pass_the_full_pipeline() {
    let cfg = AdversaryConfig::default();
    for alg in correct_algorithms() {
        for n in [2, 5, 16, 33, 64] {
            let rep = verify_lower_bound(alg.as_ref(), n, Arc::new(ZeroTosses), &cfg).unwrap();
            assert!(rep.completed, "{} n={n}", alg.name());
            assert!(rep.wakeup.ok(), "{} n={n}: {}", alg.name(), rep.wakeup);
            assert!(rep.bound_holds, "{} n={n}", alg.name());
            assert!(rep.refutation.is_none(), "{} n={n}", alg.name());
            assert!(rep.winner_steps >= ceil_log4(n), "{} n={n}", alg.name());
        }
    }
}

#[test]
fn randomized_algorithms_meet_the_expected_bound() {
    let cfg = AdversaryConfig::default();
    for alg in randomized_algorithms() {
        for n in [4, 16] {
            let rep = estimate_expected_complexity(alg.as_ref(), n, 0..15, &cfg).unwrap();
            assert!(rep.termination_rate > 0.9, "{} n={n}", alg.name());
            assert!(rep.all_meet_bound, "{} n={n}", alg.name());
            // Lemma 3.1: expected complexity >= c * k >= c * ceil(log4 n).
            assert!(
                rep.lemma_3_1_bound >= rep.termination_rate * ceil_log4(n) as f64,
                "{} n={n}",
                alg.name()
            );
        }
    }
}

#[test]
fn lemma_5_1_holds_for_every_algorithm_and_assignment() {
    let cfg = AdversaryConfig::default();
    for alg in correct_algorithms()
        .into_iter()
        .chain(randomized_algorithms())
    {
        for seed in [0u64, 7, 99] {
            let toss: Arc<dyn llsc_lowerbound::shmem::TossAssignment> = if seed == 0 {
                Arc::new(ZeroTosses)
            } else {
                Arc::new(SeededTosses::new(seed))
            };
            let all = build_all_run(alg.as_ref(), 12, toss, &cfg).unwrap();
            assert!(all.base.completed, "{} seed={seed}", alg.name());
            assert!(all.up.lemma_5_1_holds(), "{} seed={seed}", alg.name());
        }
    }
}

#[test]
fn all_reductions_over_all_constructions() {
    // Theorem 6.2's wakeup algorithms, run over three different object
    // implementations: the direct LL/SC object and both single-use
    // universal constructions. (ReadIncrement needs multi-use, so it only
    // runs over the direct object.)
    let cfg = AdversaryConfig::default();
    let n = 8;
    for kind in ReductionKind::all() {
        // Direct.
        let alg = ObjectWakeup::direct(kind, n);
        let all = build_all_run(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        assert!(all.base.completed, "direct {kind}");
        assert!(check_wakeup(&all.base.run).ok(), "direct {kind}");
        assert!(all.up.lemma_5_1_holds(), "direct {kind}");

        if kind.ops_per_process() > 1 {
            continue;
        }
        // ADT Group-Update tree.
        let spec = kind.spec_for(n);
        let alg = ObjectWakeup::new(kind, n, Arc::new(AdtTreeUniversal::new(spec.clone())));
        let all = build_all_run(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        assert!(all.base.completed, "adt {kind}");
        assert!(check_wakeup(&all.base.run).ok(), "adt {kind}");

        // Herlihy.
        let alg = ObjectWakeup::new(kind, n, Arc::new(HerlihyUniversal::new(spec)));
        let all = build_all_run(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        assert!(all.base.completed, "herlihy {kind}");
        assert!(check_wakeup(&all.base.run).ok(), "herlihy {kind}");
    }
}

#[test]
fn oblivious_constructions_pay_the_lower_bound_in_wakeup() {
    // Corollary 6.1 made concrete: wakeup through ANY implementation of a
    // Theorem 6.2 object costs the winner at least ceil(log4 n) shared
    // operations — including through the O(log n)-optimal ADT tree, which
    // sits within a constant factor of the bound.
    let cfg = AdversaryConfig::default();
    for n in [4, 16, 64] {
        let spec = ReductionKind::FetchIncrement.spec_for(n);
        let alg = ObjectWakeup::new(
            ReductionKind::FetchIncrement,
            n,
            Arc::new(AdtTreeUniversal::new(spec)),
        );
        let rep = verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        assert!(rep.wakeup.ok(), "n={n}");
        assert!(rep.bound_holds, "n={n}");
        // The ADT tree keeps even the winner within O(log n).
        let log2 = (n as f64).log2() as u64;
        assert!(
            rep.winner_steps <= 4 * log2 + 8,
            "n={n}: winner {} not O(log n)",
            rep.winner_steps
        );
    }
}

#[test]
fn wakeup_through_structural_implementations() {
    // Corollary 6.1 over the realistic pointer-based implementations: one
    // dequeue (pop) per process on an initially-full MS queue / Treiber
    // stack solves wakeup, and the measured winner respects the bound.
    use llsc_lowerbound::objects::{Queue, Stack};
    let cfg = AdversaryConfig::default();
    for n in [4usize, 16, 64] {
        let alg = ObjectWakeup::new(
            ReductionKind::Queue,
            n,
            Arc::new(MsQueue::new(Queue::with_numbered_items(n))),
        );
        let rep = verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        assert!(rep.wakeup.ok(), "ms-queue n={n}: {}", rep.wakeup);
        assert!(rep.bound_holds, "ms-queue n={n}");

        let alg = ObjectWakeup::new(
            ReductionKind::Stack,
            n,
            Arc::new(TreiberStack::new(Stack::with_numbered_items(n))),
        );
        let rep = verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        assert!(rep.wakeup.ok(), "treiber n={n}: {}", rep.wakeup);
        assert!(rep.bound_holds, "treiber n={n}");
    }
}

#[test]
fn strawmen_are_rejected_somewhere_in_the_pipeline() {
    let cfg = AdversaryConfig::default();
    let n = 32;
    for alg in strawman_algorithms() {
        let rep = verify_lower_bound(alg.as_ref(), n, Arc::new(ZeroTosses), &cfg).unwrap();
        let caught_by_checker = !rep.wakeup.ok();
        let caught_by_bound = !rep.bound_holds;
        // half-count is the special case caught by neither under the
        // adversary (see its module docs); everything else must be caught.
        if alg.name() == "strawman-half-count" {
            assert!(!caught_by_checker && !caught_by_bound);
            continue;
        }
        assert!(
            caught_by_checker || caught_by_bound,
            "{} slipped through",
            alg.name()
        );
        if let Some(refutation) = rep.refutation {
            // A constructed refutation must actually exhibit the violation.
            assert!(refutation.winner_returns_one_in_s_run, "{}", alg.name());
            assert!(refutation
                .violations
                .iter()
                .any(|v| matches!(v, WakeupViolation::PrematureWinner { .. })));
        }
    }
}

#[test]
fn adversary_runs_are_reproducible_across_invocations() {
    let cfg = AdversaryConfig::default();
    for alg in correct_algorithms() {
        let a = build_all_run(alg.as_ref(), 10, Arc::new(SeededTosses::new(5)), &cfg).unwrap();
        let b = build_all_run(alg.as_ref(), 10, Arc::new(SeededTosses::new(5)), &cfg).unwrap();
        assert_eq!(a.base.run.events(), b.base.run.events(), "{}", alg.name());
        assert_eq!(a.base.num_rounds(), b.base.num_rounds());
    }
}
