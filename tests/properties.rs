//! Property-based tests over the paper's core claims.
//!
//! The headline property: Lemmas 5.1 and 5.2 are universally quantified
//! over *algorithms* — so we generate random straight-line programs (every
//! process performs an arbitrary script of LL/validate/SC/swap/move
//! operations over a small register set), build the `(All, A)`-run, and
//! check the `UP` bound and the indistinguishability of every `(S, A)`-run
//! against it. Any unsoundness in the update rules, the secretive
//! scheduling, or the `(S, A)` construction shows up here as a violation.
//!
//! The random cases are driven by the repository's deterministic
//! [`XorShift64`] generator rather than an external property-testing
//! framework (the build environment is offline), so every run explores the
//! exact same case set; a failure message names the seed that produced it.

use llsc_lowerbound::core::{
    build_all_run, build_s_run, check_indistinguishability, is_secretive, movers,
    restriction_preserves_source, secretive_complete_schedule, AdversaryConfig, MoveConfig,
    ProcSet,
};
use llsc_lowerbound::objects::{
    check_linearizability, is_linearizable, FetchIncrement, History, ObjectSpec, Queue,
};
use llsc_lowerbound::shmem::dsl::{done, Step};
use llsc_lowerbound::shmem::rng::XorShift64;
use llsc_lowerbound::shmem::{
    Algorithm, FnAlgorithm, Operation, ProcessId, Program, RegisterId, SeededTosses, Value,
};
use std::sync::Arc;

/// One scripted shared-memory operation over a small register universe.
#[derive(Clone, Copy, Debug)]
enum ScriptOp {
    Ll(u64),
    Validate(u64),
    Sc(u64),
    Swap(u64),
    Move(u64, u64),
}

const REGISTERS: u64 = 4;

fn random_script_op(rng: &mut XorShift64) -> ScriptOp {
    match rng.below(5) {
        0 => ScriptOp::Ll(rng.below(REGISTERS)),
        1 => ScriptOp::Validate(rng.below(REGISTERS)),
        2 => ScriptOp::Sc(rng.below(REGISTERS)),
        3 => ScriptOp::Swap(rng.below(REGISTERS)),
        _ => {
            // Distinct destination: self-moves are outside the model.
            let src = rng.below(REGISTERS);
            let delta = 1 + rng.below(REGISTERS - 1);
            ScriptOp::Move(src, (src + delta) % REGISTERS)
        }
    }
}

fn random_scripts(rng: &mut XorShift64, n: usize) -> Vec<Vec<ScriptOp>> {
    (0..n)
        .map(|_| {
            let len = rng.index(6);
            (0..len).map(|_| random_script_op(rng)).collect()
        })
        .collect()
}

/// Builds the program of one process from its script. SC/swap write
/// distinctive values so runs are information-rich.
fn script_program(pid: ProcessId, script: &[ScriptOp]) -> Box<dyn Program> {
    let mut step: Step = done(Value::from(0i64));
    for (i, op) in script.iter().enumerate().rev() {
        let marker = Value::tuple([Value::Pid(pid), Value::from(i)]);
        let operation = match *op {
            ScriptOp::Ll(r) => Operation::Ll(RegisterId(r)),
            ScriptOp::Validate(r) => Operation::Validate(RegisterId(r)),
            ScriptOp::Sc(r) => Operation::Sc(RegisterId(r), marker),
            ScriptOp::Swap(r) => Operation::Swap(RegisterId(r), marker),
            ScriptOp::Move(src, dst) => Operation::Move {
                src: RegisterId(src),
                dst: RegisterId(dst),
            },
        };
        step = Step::Op(operation, Box::new(move |_| step));
    }
    step.into_program()
}

fn scripted_algorithm(scripts: Vec<Vec<ScriptOp>>) -> impl Algorithm {
    FnAlgorithm::new("scripted", move |pid: ProcessId, _n| {
        script_program(pid, &scripts[pid.0])
    })
}

/// Lemma 5.1 and Lemma 5.2 hold for arbitrary programs: every subset S
/// of processes yields an indistinguishable (S, A)-run.
#[test]
fn lemmas_5_1_and_5_2_for_random_programs() {
    for case in 0..64u64 {
        let mut rng = XorShift64::new(0x11AB + case);
        let n = 4;
        let scripts = random_scripts(&mut rng, n);
        let seed = rng.below(1000);
        let alg = scripted_algorithm(scripts.clone());
        let cfg = AdversaryConfig::default();
        let toss = Arc::new(SeededTosses::new(seed));
        let all = build_all_run(&alg, n, toss.clone(), &cfg).unwrap();
        assert!(all.base.completed, "case {case}: {scripts:?}");
        assert!(all.up.lemma_5_1_holds(), "case {case}: {scripts:?}");
        for mask in 0u32..(1 << n) {
            let s: ProcSet = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(ProcessId)
                .collect();
            let srun = build_s_run(&alg, n, toss.clone(), &s, &all, &cfg).unwrap();
            let report = check_indistinguishability(&all, &srun);
            assert!(
                report.ok(),
                "case {case}, S = {:?}: {:?}",
                s,
                report.violations
            );
        }
    }
}

/// Lemma 4.1: the constructed schedule is secretive for arbitrary
/// configurations; Lemma 4.2: restricting to the movers preserves the
/// source.
#[test]
fn lemmas_4_1_and_4_2_for_random_configs() {
    for case in 0..64u64 {
        let mut rng = XorShift64::new(0x41A2 + case);
        let len = 1 + rng.index(23);
        let cfg = MoveConfig::from_iter((0..len).map(|i| {
            let src = rng.below(8);
            let delta = 1 + rng.below(7);
            (ProcessId(i), RegisterId(src), RegisterId((src + delta) % 8))
        }));
        let sigma = secretive_complete_schedule(&cfg);
        assert!(is_secretive(&sigma, &cfg), "case {case}");
        for r in cfg.destinations() {
            let m = movers(r, &sigma, &cfg);
            assert!(m.len() <= 2, "case {case}, {r}: {m:?}");
            let keep: ProcSet = m.into_iter().collect();
            assert!(
                restriction_preserves_source(r, &sigma, &cfg, &keep),
                "case {case}, {r}"
            );
        }
    }
}

/// Sequential histories generated straight from a specification are
/// always linearizable.
#[test]
fn generated_sequential_histories_linearize() {
    for ops_count in 1usize..10 {
        let spec = FetchIncrement::new(16);
        let mut h = History::new();
        let mut state = spec.initial();
        for i in 0..ops_count {
            let id = h.invoke(ProcessId(i % 3), FetchIncrement::op());
            let (next, resp) = spec.apply(&state, &FetchIncrement::op());
            state = next;
            h.respond(id, resp);
        }
        assert!(is_linearizable(&spec, &h), "ops_count {ops_count}");
    }
}

/// A queue history that dequeues values never enqueued is never
/// linearizable.
#[test]
fn phantom_dequeues_never_linearize() {
    for bogus in (100i64..200).step_by(7) {
        let q = Queue::new();
        let h = History::sequential([
            (
                ProcessId(0),
                Queue::enqueue_op(Value::from(1i64)),
                Value::Unit,
            ),
            (ProcessId(1), Queue::dequeue_op(), Value::from(bogus)),
        ]);
        assert!(!is_linearizable(&q, &h), "bogus {bogus}");
    }
}

/// The linearizability checker returns a witness that really is a
/// valid linearisation: replaying it through the spec reproduces the
/// observed responses.
#[test]
fn witnesses_replay_correctly() {
    for perm in 0usize..6 {
        // Concurrent increments responding in an arbitrary rotation.
        let spec = FetchIncrement::new(16);
        let mut h = History::new();
        let k = 4usize;
        let ids: Vec<_> = (0..k)
            .map(|i| h.invoke(ProcessId(i), FetchIncrement::op()))
            .collect();
        for (offset, id) in ids.iter().enumerate() {
            let v = (offset + perm) % k;
            h.respond(*id, Value::from(v as i64));
        }
        match check_linearizability(&spec, &h) {
            llsc_lowerbound::objects::LinCheck::Linearizable { witness } => {
                let mut state = spec.initial();
                for id in &witness {
                    let rec = &h.records()[id.index()];
                    let (next, resp) = spec.apply(&state, &rec.op);
                    state = next;
                    assert_eq!(Some(&resp), rec.resp.as_ref(), "rotation {perm}");
                }
            }
            llsc_lowerbound::objects::LinCheck::NotLinearizable => {
                // Distinct responses 0..k always linearize for
                // fetch&increment (all ops concurrent).
                panic!("rotation {perm} should linearize");
            }
        }
    }
}
