//! Wakeup stress sweeps: beyond the Figure-2 adversary.
//!
//! The adversary run alone cannot expose partial-participation bugs (its
//! first round makes everyone step). The stress portfolio — partition,
//! sequential, and random schedules — closes the gap, and these tests pin
//! down which shipped algorithms survive it and which strawmen fall.

use llsc_lowerbound::core::{standard_portfolio, stress_wakeup, StressSchedule};
use llsc_lowerbound::shmem::{SeededTosses, ZeroTosses};
use llsc_lowerbound::wakeup::{correct_algorithms, HalfCountWakeup, NoStepWakeup, PrematureWakeup};
use std::sync::Arc;

#[test]
fn correct_algorithms_survive_the_full_portfolio() {
    for alg in correct_algorithms() {
        for n in [2, 5, 8] {
            let report = stress_wakeup(
                alg.as_ref(),
                n,
                Arc::new(ZeroTosses),
                &standard_portfolio(n, 4),
                2_000_000,
            )
            .unwrap();
            assert!(report.ok(), "{} n={n}: {report}", alg.name());
        }
    }
}

#[test]
fn randomized_counter_survives_with_real_coins() {
    use llsc_lowerbound::wakeup::RandomizedCounterWakeup;
    for seed in [1u64, 9] {
        let report = stress_wakeup(
            &RandomizedCounterWakeup,
            6,
            Arc::new(SeededTosses::new(seed)),
            &standard_portfolio(6, 3),
            2_000_000,
        )
        .unwrap();
        assert!(report.ok(), "seed={seed}: {report}");
    }
}

#[test]
fn half_count_falls_to_partition_schedules() {
    // The strawman the adversary cannot catch: stress catches it on every
    // partition of at least ceil(n/2) processes.
    let n = 8;
    let report = stress_wakeup(
        &HalfCountWakeup,
        n,
        Arc::new(ZeroTosses),
        &standard_portfolio(n, 2),
        1_000_000,
    )
    .unwrap();
    assert!(!report.ok());
    let caught_partitions = report
        .failures
        .iter()
        .filter(|f| matches!(&f.schedule, StressSchedule::Partition(ps) if ps.len() >= n / 2))
        .count();
    assert!(caught_partitions >= 1, "{report}");
}

#[test]
fn premature_and_no_step_fail_almost_everywhere() {
    for (name, alg) in [
        (
            "premature",
            &PrematureWakeup as &dyn llsc_lowerbound::shmem::Algorithm,
        ),
        ("no-step", &NoStepWakeup),
    ] {
        let report = stress_wakeup(
            alg,
            6,
            Arc::new(ZeroTosses),
            &standard_portfolio(6, 2),
            1_000_000,
        )
        .unwrap();
        assert!(!report.ok(), "{name}");
        // These fail even the smallest partition.
        assert!(
            report
                .failures
                .iter()
                .any(|f| matches!(&f.schedule, StressSchedule::Partition(ps) if ps.len() == 1)),
            "{name}: {report}"
        );
    }
}

#[test]
fn portfolio_is_deterministic() {
    let a = standard_portfolio(5, 2);
    let b = standard_portfolio(5, 2);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y);
    }
}
